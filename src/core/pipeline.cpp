#include "core/pipeline.h"

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <set>
#include <thread>
#include <utility>

#include "obs/clock.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "ocr/engine.h"
#include "parse/accident_parser.h"
#include "parse/disengagement_parser.h"
#include "parse/report_header.h"
#include "util/errors.h"

namespace avtk::core {

namespace {

// Everything one document contributes; merged in document order so the
// pipeline's output is independent of the thread count. A faulted document
// contributes nothing but its quarantine record.
struct document_result {
  std::vector<dataset::disengagement_record> events;
  std::vector<dataset::mileage_record> mileage;
  std::vector<dataset::accident_record> accidents;
  std::size_t ocr_lines = 0;
  double ocr_confidence_sum = 0;
  std::size_t ocr_manual_review_lines = 0;
  std::size_t parse_failed_lines = 0;
  std::size_t manual_transcriptions = 0;
  bool is_disengagement_report = false;
  bool is_accident_report = false;
  bool unidentified = false;
  std::optional<quarantined_document> fault;
};

// Rebuilds a document with each line replaced by its OCR-recovered text,
// preserving the page/line structure the parsers rely on.
ocr::document recover_document(const ocr::document& doc, const ocr::mock_ocr_engine& engine,
                               document_result& result) {
  ocr::document out = doc;
  for (auto& p : out.pages) {
    for (auto& line : p.lines) {
      const auto rec = engine.recognize_line(line);
      line = rec.text;
      result.ocr_confidence_sum += rec.confidence;
      ++result.ocr_lines;
      if (rec.needs_manual_review) ++result.ocr_manual_review_lines;
    }
  }
  return out;
}

// Timing sinks shared by every Stage II worker; accumulation is atomic so
// the totals are exact regardless of thread count.
struct stage2_timing {
  obs::duration_accumulator ocr_ns;
  obs::duration_accumulator parse_ns;
};

// Scans one document through OCR + identify + parse. With `strict` set
// (the skip/quarantine policies, and probe_document) document-level faults
// that fail_fast historically tolerated — empty documents, unidentifiable
// kinds, unparseable residue, structurally invalid mileage tables — are
// promoted to exceptions so the policy layer can contain them.
document_result process_document(const ocr::document& delivered, const ocr::document* fallback,
                                 const ocr::mock_ocr_engine& engine,
                                 const pipeline_config& config, bool strict,
                                 stage2_timing& timing, std::uint64_t scan_span) {
  document_result result;
  ocr::document recovered;
  {
    const obs::scoped_timer timer(&timing.ocr_ns);
    const obs::scoped_span span(config.trace, "ocr", scan_span);
    recovered = config.run_ocr ? recover_document(delivered, engine, result) : delivered;
  }

  const obs::scoped_timer timer(&timing.parse_ns);
  const obs::scoped_span span(config.trace, "parse", scan_span);
  if (strict && delivered.line_count() == 0) {
    throw header_error("empty document: " + delivered.title);
  }
  auto id = parse::identify_report(recovered);
  if (id.kind == parse::report_kind::unknown && fallback != nullptr) {
    id = parse::identify_report(*fallback);
  }
  if (id.kind == parse::report_kind::disengagement) {
    result.is_disengagement_report = true;
    auto parsed = parse::parse_disengagement_report(recovered, fallback);
    result.parse_failed_lines = parsed.failed_lines;
    result.manual_transcriptions = parsed.manual_transcriptions;
    if (strict) {
      if (parsed.failed_lines > 0) {
        throw parse_error(std::to_string(parsed.failed_lines) +
                          " unparseable line(s) in: " + delivered.title);
      }
      // A mileage table listing the same vehicle-month twice is structural
      // damage (a duplicated page, a scanner double-feed): totals would be
      // silently inflated, so the document is refused instead.
      std::set<std::pair<std::string, std::int64_t>> seen;
      for (const auto& m : parsed.mileage) {
        if (!seen.emplace(m.vehicle_id, m.month.index()).second) {
          throw parse_error("duplicate mileage row for vehicle " + m.vehicle_id + " in " +
                            m.month.to_string() + ": " + delivered.title);
        }
      }
    }
    result.events = std::move(parsed.events);
    result.mileage = std::move(parsed.mileage);
  } else if (id.kind == parse::report_kind::accident) {
    result.is_accident_report = true;
    auto parsed = parse::parse_accident_report(recovered, fallback);
    if (parsed.used_manual_fallback) ++result.manual_transcriptions;
    result.accidents.push_back(std::move(parsed.record));
  } else if (strict) {
    throw header_error("cannot identify report kind of: " + delivered.title);
  } else {
    result.unidentified = true;
  }
  return result;
}

}  // namespace

std::string_view error_policy_name(error_policy policy) {
  switch (policy) {
    case error_policy::fail_fast:
      return "fail_fast";
    case error_policy::skip:
      return "skip";
    case error_policy::quarantine:
      return "quarantine";
  }
  return "fail_fast";
}

std::optional<error_policy> error_policy_from_name(std::string_view name) {
  if (name == "fail_fast" || name == "fail-fast") return error_policy::fail_fast;
  if (name == "skip") return error_policy::skip;
  if (name == "quarantine") return error_policy::quarantine;
  return std::nullopt;
}

document_error::document_error(std::size_t index, std::string title, error_code code,
                               std::string message)
    : error(code, "document " + std::to_string(index) + " ('" + title + "'): " + message),
      index_(index),
      title_(std::move(title)),
      message_(std::move(message)) {}

std::size_t label_disengagements(dataset::failure_database& db,
                                 const nlp::keyword_voting_classifier& classifier,
                                 unsigned parallelism) {
  // One batch call so the classifier's automaton, interner and per-worker
  // scratch buffers are set up once for the whole corpus.
  std::vector<std::string_view> descriptions;
  descriptions.reserve(db.disengagements().size());
  for (const auto& d : db.disengagements()) descriptions.push_back(d.description);
  const auto verdicts = classifier.classify_all(descriptions, parallelism);

  std::size_t unknown = 0;
  for (std::size_t i = 0; i < verdicts.size(); ++i) {
    db.relabel_disengagement(i, verdicts[i].tag, verdicts[i].category);
    if (verdicts[i].tag == nlp::fault_tag::unknown) ++unknown;
  }
  return unknown;
}

pipeline_result run_pipeline(const std::vector<ocr::document>& documents,
                             const std::vector<ocr::document>& pristine,
                             const pipeline_config& config) {
  if (!pristine.empty() && pristine.size() != documents.size()) {
    throw logic_error("pristine fallback must parallel documents one-to-one");
  }

  const obs::stopwatch total_watch;
  obs::scoped_span pipeline_span(config.trace, "pipeline");

  pipeline_result result;
  auto& stats = result.stats;
  stats.documents_in = documents.size();

  const ocr::mock_ocr_engine engine(ocr::lexicon::builtin());

  // Stage II: OCR + parse, one task per document. Every per-document
  // failure is captured into its slot; what happens to it afterwards is
  // the policy's call, so the scan itself is identical for all policies
  // (and for any thread count).
  const bool strict = config.on_error != error_policy::fail_fast;
  stage2_timing stage2;
  obs::scoped_span scan_span(config.trace, "scan", pipeline_span.id());
  std::vector<document_result> per_document(documents.size());
  // Under fail_fast the lowest faulting index is the run's outcome, so
  // workers stop picking up documents beyond a known fault (documents
  // below it must still be scanned: one of them could fail at a lower
  // index, and that one wins).
  std::atomic<std::size_t> first_fault{documents.size()};
  const auto worker = [&](std::size_t i) {
    const ocr::document* fallback = pristine.empty() ? nullptr : &pristine[i];
    try {
      per_document[i] =
          process_document(documents[i], fallback, engine, config, strict, stage2, scan_span.id());
    } catch (const error& e) {
      per_document[i] = document_result{};
      per_document[i].fault =
          quarantined_document{i, documents[i].title, e.code(), e.what()};
    } catch (const std::exception& e) {
      per_document[i] = document_result{};
      per_document[i].fault =
          quarantined_document{i, documents[i].title, error_code::internal, e.what()};
    }
    if (per_document[i].fault) {
      if (strict) {
        // Mark the refusal in the trace so a chaos run's scan shows where
        // containment fired (never emitted under fail_fast: its traces
        // stay bit-identical to the historical ones).
        const obs::scoped_span quarantine_span(config.trace, "quarantine", scan_span.id());
      }
      // Atomic running minimum of the faulting indices.
      std::size_t seen = first_fault.load(std::memory_order_relaxed);
      while (i < seen && !first_fault.compare_exchange_weak(seen, i, std::memory_order_relaxed)) {
      }
    }
  };

  const unsigned parallelism = std::max(1u, config.parallelism);
  if (parallelism == 1 || documents.size() <= 1) {
    for (std::size_t i = 0; i < documents.size(); ++i) {
      worker(i);
      if (!strict && per_document[i].fault) break;  // fail_fast: first fault decides
    }
  } else {
    // Fixed-stride work split: no shared mutable state beyond disjoint
    // per_document slots (CP.2: avoid data races by construction).
    std::vector<std::thread> threads;
    const unsigned n = std::min<unsigned>(parallelism,
                                          static_cast<unsigned>(documents.size()));
    threads.reserve(n);
    for (unsigned t = 0; t < n; ++t) {
      threads.emplace_back([&, t] {
        for (std::size_t i = t; i < documents.size(); i += n) {
          if (!strict && i > first_fault.load(std::memory_order_relaxed)) continue;
          worker(i);
        }
      });
    }
    for (auto& thread : threads) thread.join();
  }
  scan_span.close();

  if (config.on_error == error_policy::fail_fast &&
      first_fault.load(std::memory_order_relaxed) < documents.size()) {
    const auto& f = *per_document[first_fault.load(std::memory_order_relaxed)].fault;
    throw document_error(f.index, f.title, f.code, f.message);
  }

  // Deterministic merge in document order; faulted documents contribute
  // nothing and are counted (and, under quarantine, surfaced).
  obs::scoped_span merge_span(config.trace, "merge", pipeline_span.id());
  const obs::stopwatch merge_watch;
  std::vector<dataset::disengagement_record> all_events;
  std::vector<dataset::mileage_record> all_mileage;
  std::vector<dataset::accident_record> all_accidents;
  std::map<error_code, std::size_t> quarantined_by_code;
  double confidence_sum = 0;
  for (auto& doc : per_document) {
    if (doc.fault) {
      ++stats.documents_quarantined;
      ++quarantined_by_code[doc.fault->code];
      if (config.on_error == error_policy::quarantine) {
        result.quarantined.push_back(std::move(*doc.fault));
      }
      continue;
    }
    stats.ocr_lines += doc.ocr_lines;
    confidence_sum += doc.ocr_confidence_sum;
    stats.ocr_manual_review_lines += doc.ocr_manual_review_lines;
    stats.parse_failed_lines += doc.parse_failed_lines;
    stats.manual_transcriptions += doc.manual_transcriptions;
    if (doc.is_disengagement_report) ++stats.disengagement_reports;
    if (doc.is_accident_report) ++stats.accident_reports;
    if (doc.unidentified) ++stats.unidentified_documents;
    all_events.insert(all_events.end(), std::make_move_iterator(doc.events.begin()),
                      std::make_move_iterator(doc.events.end()));
    all_mileage.insert(all_mileage.end(), std::make_move_iterator(doc.mileage.begin()),
                       std::make_move_iterator(doc.mileage.end()));
    all_accidents.insert(all_accidents.end(), std::make_move_iterator(doc.accidents.begin()),
                         std::make_move_iterator(doc.accidents.end()));
  }
  stats.ocr_mean_confidence =
      stats.ocr_lines > 0 ? confidence_sum / static_cast<double>(stats.ocr_lines) : 1.0;
  const double merge_seconds = merge_watch.elapsed_seconds();
  merge_span.close();

  // Stage II-2: normalization.
  obs::scoped_span normalize_span(config.trace, "normalize", pipeline_span.id());
  const obs::stopwatch normalize_watch;
  const auto d_stats = parse::normalize_disengagements(all_events, config.normalizer);
  parse::normalize_mileage(all_mileage);
  parse::normalize_accidents(all_accidents);
  stats.records_normalized_away = d_stats.records_dropped;
  const double normalize_seconds = normalize_watch.elapsed_seconds();
  normalize_span.close();

  // Stage IV ingest: the consolidated failure database.
  obs::scoped_span ingest_span(config.trace, "ingest", pipeline_span.id());
  const obs::stopwatch ingest_watch;
  for (auto& e : all_events) result.database.add_disengagement(std::move(e));
  for (auto& m : all_mileage) result.database.add_mileage(std::move(m));
  for (auto& a : all_accidents) result.database.add_accident(std::move(a));
  const double ingest_seconds = ingest_watch.elapsed_seconds();
  ingest_span.close();

  // Stage III: NLP labeling, split into matcher construction (dictionary
  // interning + automaton compile under the automaton backend) and the
  // labeling pass proper, so `stage_timings` shows where label time goes.
  obs::scoped_span classify_span(config.trace, "classify", pipeline_span.id());
  const obs::stopwatch classify_watch;
  obs::scoped_span build_span(config.trace, "classify.build", classify_span.id());
  const obs::stopwatch build_watch;
  const nlp::keyword_voting_classifier classifier(config.dictionary, config.labeling);
  const double classify_build_seconds = build_watch.elapsed_seconds();
  build_span.close();
  obs::scoped_span label_span(config.trace, "classify.label", classify_span.id());
  const obs::stopwatch label_watch;
  stats.unknown_tags = label_disengagements(result.database, classifier, parallelism);
  const double classify_label_seconds = label_watch.elapsed_seconds();
  label_span.close();
  const double classify_seconds = classify_watch.elapsed_seconds();
  classify_span.close();

  obs::scoped_span analysis_span(config.trace, "analysis", pipeline_span.id());
  const obs::stopwatch analysis_watch;
  stats.disengagements = result.database.disengagements().size();
  stats.accidents = result.database.accidents().size();
  stats.analyzed = parse::analyzed_manufacturers(result.database, config.filter);
  const double analysis_seconds = analysis_watch.elapsed_seconds();
  analysis_span.close();

  stats.stage_timings = {
      {"ocr", stage2.ocr_ns.total_seconds()},   {"parse", stage2.parse_ns.total_seconds()},
      {"merge", merge_seconds},                 {"normalize", normalize_seconds},
      {"ingest", ingest_seconds},               {"classify", classify_seconds},
      {"classify.build", classify_build_seconds},
      {"classify.label", classify_label_seconds},
      {"analysis", analysis_seconds},
  };
  stats.total_seconds = total_watch.elapsed_seconds();

  // Operational metrics for the process-wide registry (fleet-monitor style
  // visibility; the per-run numbers live in `stats`).
  auto& registry = obs::metrics();
  registry.get_counter("pipeline.runs").add();
  registry.get_counter("pipeline.documents").add(stats.documents_in);
  registry.get_counter("pipeline.disengagements").add(stats.disengagements);
  registry.get_counter("pipeline.unknown_tags").add(stats.unknown_tags);
  if (stats.documents_quarantined > 0) {
    registry.get_counter("pipeline.documents_quarantined").add(stats.documents_quarantined);
    for (const auto& [code, count] : quarantined_by_code) {
      registry.get_counter("pipeline.quarantined." + std::string(error_code_name(code)))
          .add(count);
    }
  }
  registry.set_gauge("pipeline.last_run_seconds", stats.total_seconds);
  registry.set_gauge("pipeline.last_ocr_mean_confidence", stats.ocr_mean_confidence);
  return result;
}

std::optional<quarantined_document> probe_document(const ocr::document& doc,
                                                   const ocr::document* pristine,
                                                   const pipeline_config& config,
                                                   std::size_t index) {
  pipeline_config probe = config;
  probe.trace = nullptr;  // a probe never pollutes the caller's trace
  const ocr::mock_ocr_engine engine(ocr::lexicon::builtin());
  stage2_timing timing;
  try {
    process_document(doc, pristine, engine, probe, /*strict=*/true, timing, 0);
    return std::nullopt;
  } catch (const error& e) {
    return quarantined_document{index, doc.title, e.code(), e.what()};
  } catch (const std::exception& e) {
    return quarantined_document{index, doc.title, error_code::internal, e.what()};
  }
}

std::string quarantine_to_json(const pipeline_result& result, error_policy policy) {
  namespace json = obs::json;
  json::array docs;
  for (const auto& q : result.quarantined) {
    json::object entry;
    entry.emplace_back("index", q.index);
    entry.emplace_back("title", q.title);
    entry.emplace_back("code", std::string(error_code_name(q.code)));
    entry.emplace_back("message", q.message);
    docs.emplace_back(std::move(entry));
  }
  json::object root;
  root.emplace_back("schema", "avtk.quarantine.v1");
  root.emplace_back("policy", std::string(error_policy_name(policy)));
  root.emplace_back("documents_in", result.stats.documents_in);
  root.emplace_back("documents_quarantined", result.stats.documents_quarantined);
  root.emplace_back("documents", std::move(docs));
  return json::value(std::move(root)).dump(2) + "\n";
}

double pipeline_stats::stage_seconds(std::string_view stage) const {
  for (const auto& t : stage_timings) {
    if (t.stage == stage) return t.seconds;
  }
  return 0;
}

}  // namespace avtk::core
