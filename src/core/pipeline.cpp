#include "core/pipeline.h"

#include <atomic>
#include <cstdint>
#include <map>
#include <thread>
#include <utility>

#include "obs/clock.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "util/errors.h"

namespace avtk::core {

namespace {

// Maps the batch run's configuration onto the shared per-document
// processor. Scans are strict under skip/quarantine (document-level damage
// becomes a captured fault) and lenient under fail_fast, preserving the
// historical tolerate-everything behavior of that policy bit-for-bit. The
// Stage-III dictionary is deliberately not handed over: the batch driver
// labels the merged corpus with its own classifier, so the processor must
// never pay for building one.
ingest::processor_config make_scan_config(const pipeline_config& config) {
  ingest::processor_config pcfg;
  pcfg.run_ocr = config.run_ocr;
  pcfg.strict = config.on_error != error_policy::fail_fast;
  pcfg.ocr_give_up_confidence = config.ocr_give_up_confidence;
  pcfg.retry_degraded_ocr = config.retry_degraded_ocr;
  pcfg.normalizer = config.normalizer;
  pcfg.trace = config.trace;
  return pcfg;
}

}  // namespace

std::size_t label_disengagements(dataset::failure_database& db,
                                 const nlp::keyword_voting_classifier& classifier,
                                 unsigned parallelism) {
  // One batch call so the classifier's automaton, interner and per-worker
  // scratch buffers are set up once for the whole corpus.
  std::vector<std::string_view> descriptions;
  descriptions.reserve(db.disengagements().size());
  for (const auto& d : db.disengagements()) descriptions.push_back(d.description);
  const auto verdicts = classifier.classify_all(descriptions, parallelism);

  std::size_t unknown = 0;
  for (std::size_t i = 0; i < verdicts.size(); ++i) {
    db.relabel_disengagement(i, verdicts[i].tag, verdicts[i].category);
    if (verdicts[i].tag == nlp::fault_tag::unknown) ++unknown;
  }
  return unknown;
}

pipeline_result run_pipeline(const std::vector<ocr::document>& documents,
                             const std::vector<ocr::document>& pristine,
                             const pipeline_config& config) {
  if (!pristine.empty() && pristine.size() != documents.size()) {
    throw logic_error("pristine fallback must parallel documents one-to-one");
  }

  const obs::stopwatch total_watch;
  obs::scoped_span pipeline_span(config.trace, "pipeline");

  pipeline_result result;
  auto& stats = result.stats;
  stats.documents_in = documents.size();

  // Stage II: OCR + parse through the shared document processor, one task
  // per document. Every per-document failure is captured into its slot;
  // what happens to it afterwards is the policy's call, so the scan itself
  // is identical for all policies (and for any thread count).
  const bool strict = config.on_error != error_policy::fail_fast;
  const ingest::document_processor processor(make_scan_config(config));
  ingest::scan_timing stage2;
  obs::scoped_span scan_span(config.trace, "scan", pipeline_span.id());
  std::vector<ingest::document_scan> per_document(documents.size());
  // Under fail_fast the lowest faulting index is the run's outcome, so
  // workers stop picking up documents beyond a known fault (documents
  // below it must still be scanned: one of them could fail at a lower
  // index, and that one wins).
  std::atomic<std::size_t> first_fault{documents.size()};
  const auto worker = [&](std::size_t i) {
    const ocr::document* fallback = pristine.empty() ? nullptr : &pristine[i];
    per_document[i] = processor.scan(documents[i], fallback, i, &stage2, scan_span.id());
    if (per_document[i].fault) {
      // Atomic running minimum of the faulting indices.
      std::size_t seen = first_fault.load(std::memory_order_relaxed);
      while (i < seen && !first_fault.compare_exchange_weak(seen, i, std::memory_order_relaxed)) {
      }
    }
  };

  const unsigned parallelism = std::max(1u, config.parallelism);
  if (parallelism == 1 || documents.size() <= 1) {
    for (std::size_t i = 0; i < documents.size(); ++i) {
      worker(i);
      if (!strict && per_document[i].fault) break;  // fail_fast: first fault decides
    }
  } else {
    // Fixed-stride work split: no shared mutable state beyond disjoint
    // per_document slots (CP.2: avoid data races by construction).
    std::vector<std::thread> threads;
    const unsigned n = std::min<unsigned>(parallelism,
                                          static_cast<unsigned>(documents.size()));
    threads.reserve(n);
    for (unsigned t = 0; t < n; ++t) {
      threads.emplace_back([&, t] {
        for (std::size_t i = t; i < documents.size(); i += n) {
          if (!strict && i > first_fault.load(std::memory_order_relaxed)) continue;
          worker(i);
        }
      });
    }
    for (auto& thread : threads) thread.join();
  }
  scan_span.close();

  if (config.on_error == error_policy::fail_fast &&
      first_fault.load(std::memory_order_relaxed) < documents.size()) {
    const auto& f = *per_document[first_fault.load(std::memory_order_relaxed)].fault;
    throw document_error(f.index, f.title, f.code, f.message);
  }

  // Deterministic merge in document order; faulted documents contribute
  // nothing and are counted (and, under quarantine, surfaced).
  obs::scoped_span merge_span(config.trace, "merge", pipeline_span.id());
  const obs::stopwatch merge_watch;
  std::vector<dataset::disengagement_record> all_events;
  std::vector<dataset::mileage_record> all_mileage;
  std::vector<dataset::accident_record> all_accidents;
  std::map<error_code, std::size_t> quarantined_by_code;
  double confidence_sum = 0;
  for (auto& doc : per_document) {
    // The retry rung counts whether or not it saved the document — a
    // retried-then-quarantined document still burned the second pass.
    if (doc.ocr_retried) ++stats.ocr_retries;
    if (doc.fault) {
      ++stats.documents_quarantined;
      ++quarantined_by_code[doc.fault->code];
      if (config.on_error == error_policy::quarantine) {
        result.quarantined.push_back(std::move(*doc.fault));
      }
      continue;
    }
    stats.ocr_lines += doc.ocr_lines;
    confidence_sum += doc.ocr_confidence_sum;
    stats.ocr_manual_review_lines += doc.ocr_manual_review_lines;
    stats.parse_failed_lines += doc.parse_failed_lines;
    stats.manual_transcriptions += doc.manual_transcriptions;
    if (doc.is_disengagement_report) ++stats.disengagement_reports;
    if (doc.is_accident_report) ++stats.accident_reports;
    if (doc.unidentified) ++stats.unidentified_documents;
    all_events.insert(all_events.end(), std::make_move_iterator(doc.events.begin()),
                      std::make_move_iterator(doc.events.end()));
    all_mileage.insert(all_mileage.end(), std::make_move_iterator(doc.mileage.begin()),
                       std::make_move_iterator(doc.mileage.end()));
    all_accidents.insert(all_accidents.end(), std::make_move_iterator(doc.accidents.begin()),
                         std::make_move_iterator(doc.accidents.end()));
  }
  stats.ocr_mean_confidence =
      stats.ocr_lines > 0 ? confidence_sum / static_cast<double>(stats.ocr_lines) : 1.0;
  const double merge_seconds = merge_watch.elapsed_seconds();
  merge_span.close();

  // Stage II-2: normalization.
  obs::scoped_span normalize_span(config.trace, "normalize", pipeline_span.id());
  const obs::stopwatch normalize_watch;
  const auto d_stats = parse::normalize_disengagements(all_events, config.normalizer);
  parse::normalize_mileage(all_mileage);
  parse::normalize_accidents(all_accidents);
  stats.records_normalized_away = d_stats.records_dropped;
  const double normalize_seconds = normalize_watch.elapsed_seconds();
  normalize_span.close();

  // Stage IV ingest: the consolidated failure database.
  obs::scoped_span ingest_span(config.trace, "ingest", pipeline_span.id());
  const obs::stopwatch ingest_watch;
  for (auto& e : all_events) result.database.add_disengagement(std::move(e));
  for (auto& m : all_mileage) result.database.add_mileage(std::move(m));
  for (auto& a : all_accidents) result.database.add_accident(std::move(a));
  const double ingest_seconds = ingest_watch.elapsed_seconds();
  ingest_span.close();

  // Stage III: NLP labeling, split into matcher construction (dictionary
  // interning + automaton compile under the automaton backend) and the
  // labeling pass proper, so `stage_timings` shows where label time goes.
  obs::scoped_span classify_span(config.trace, "classify", pipeline_span.id());
  const obs::stopwatch classify_watch;
  obs::scoped_span build_span(config.trace, "classify.build", classify_span.id());
  const obs::stopwatch build_watch;
  const nlp::keyword_voting_classifier classifier(config.dictionary, config.labeling);
  const double classify_build_seconds = build_watch.elapsed_seconds();
  build_span.close();
  obs::scoped_span label_span(config.trace, "classify.label", classify_span.id());
  const obs::stopwatch label_watch;
  stats.unknown_tags = label_disengagements(result.database, classifier, parallelism);
  const double classify_label_seconds = label_watch.elapsed_seconds();
  label_span.close();
  const double classify_seconds = classify_watch.elapsed_seconds();
  classify_span.close();

  obs::scoped_span analysis_span(config.trace, "analysis", pipeline_span.id());
  const obs::stopwatch analysis_watch;
  stats.disengagements = result.database.disengagements().size();
  stats.accidents = result.database.accidents().size();
  stats.analyzed = parse::analyzed_manufacturers(result.database, config.filter);
  const double analysis_seconds = analysis_watch.elapsed_seconds();
  analysis_span.close();

  stats.stage_timings = {
      {"ocr", stage2.ocr_ns.total_seconds()},   {"parse", stage2.parse_ns.total_seconds()},
      {"merge", merge_seconds},                 {"normalize", normalize_seconds},
      {"ingest", ingest_seconds},               {"classify", classify_seconds},
      {"classify.build", classify_build_seconds},
      {"classify.label", classify_label_seconds},
      {"analysis", analysis_seconds},
  };
  stats.total_seconds = total_watch.elapsed_seconds();

  // Operational metrics for the process-wide registry (fleet-monitor style
  // visibility; the per-run numbers live in `stats`).
  auto& registry = obs::metrics();
  registry.get_counter("pipeline.runs").add();
  registry.get_counter("pipeline.documents").add(stats.documents_in);
  registry.get_counter("pipeline.disengagements").add(stats.disengagements);
  registry.get_counter("pipeline.unknown_tags").add(stats.unknown_tags);
  if (stats.documents_quarantined > 0) {
    registry.get_counter("pipeline.documents_quarantined").add(stats.documents_quarantined);
    for (const auto& [code, count] : quarantined_by_code) {
      registry.get_counter("pipeline.quarantined." + std::string(error_code_name(code)))
          .add(count);
    }
  }
  if (stats.ocr_retries > 0) {
    registry.get_counter("pipeline.ocr.retried").add(stats.ocr_retries);
  }
  registry.set_gauge("pipeline.last_run_seconds", stats.total_seconds);
  registry.set_gauge("pipeline.last_ocr_mean_confidence", stats.ocr_mean_confidence);
  return result;
}

std::optional<quarantined_document> probe_document(const ocr::document& doc,
                                                   const ocr::document* pristine,
                                                   const pipeline_config& config,
                                                   std::size_t index) {
  auto pcfg = make_scan_config(config);
  pcfg.strict = true;     // a probe always applies the full validations
  pcfg.trace = nullptr;   // ... and never pollutes the caller's trace
  const ingest::document_processor processor(std::move(pcfg));
  return processor.scan(doc, pristine, index).fault;
}

std::string quarantine_to_json(const pipeline_result& result, error_policy policy) {
  namespace json = obs::json;
  json::array docs;
  for (const auto& q : result.quarantined) {
    json::object entry;
    entry.emplace_back("index", q.index);
    entry.emplace_back("title", q.title);
    entry.emplace_back("code", std::string(error_code_name(q.code)));
    entry.emplace_back("message", q.message);
    docs.emplace_back(std::move(entry));
  }
  json::object root;
  root.emplace_back("schema", "avtk.quarantine.v1");
  root.emplace_back("policy", std::string(error_policy_name(policy)));
  root.emplace_back("documents_in", result.stats.documents_in);
  root.emplace_back("documents_quarantined", result.stats.documents_quarantined);
  root.emplace_back("documents", std::move(docs));
  return json::value(std::move(root)).dump(2) + "\n";
}

double pipeline_stats::stage_seconds(std::string_view stage) const {
  for (const auto& t : stage_timings) {
    if (t.stage == stage) return t.seconds;
  }
  return 0;
}

}  // namespace avtk::core
