// avtk/core/context.h
//
// Driving-context breakdowns: the §III-C road-type mix (31.7% city streets,
// 29.26% highways, ...) and the "not all miles are equivalent" threat the
// paper raises in §VI — where do disengagements concentrate, by road type
// and weather, among the manufacturers that report those fields?
#pragma once

#include <map>
#include <string>
#include <vector>

#include "dataset/view.h"

namespace avtk::core {

/// Share of disengagements per road type (over events that report one).
struct road_mix_row {
  dataset::road_type road = dataset::road_type::unknown;
  long long events = 0;
  double share = 0;  ///< of events with a known road type
};
std::vector<road_mix_row> build_road_mix(const dataset::database_view& db);

/// Share of disengagements per weather condition (over events reporting it).
struct weather_mix_row {
  dataset::weather conditions = dataset::weather::unknown;
  long long events = 0;
  double share = 0;
};
std::vector<weather_mix_row> build_weather_mix(const dataset::database_view& db);

/// Environment-tagged share by weather: do adverse conditions produce more
/// environment/perception disengagements? (the §VI "challenging
/// environments" confounder, quantified).
struct weather_environment_row {
  dataset::weather conditions = dataset::weather::unknown;
  long long events = 0;
  double perception_share = 0;  ///< perception/environment-tagged fraction
};
std::vector<weather_environment_row> build_weather_environment(
    const dataset::database_view& db);

std::string render_context_breakdown(const dataset::database_view& db);

}  // namespace avtk::core
