#include "core/report.h"

#include <cmath>
#include <cstdio>

#include "dataset/ground_truth.h"
#include "util/table.h"

namespace avtk::core {

using dataset::manufacturer;
namespace gt = dataset::ground_truth;

namespace {

std::string opt_num(std::optional<double> v, int digits = 4) {
  return v ? format_number(*v, digits) : "-";
}
std::string opt_int(std::optional<int> v) { return v ? std::to_string(*v) : "-"; }
std::string opt_ll(std::optional<long long> v) { return v ? std::to_string(*v) : "-"; }

std::string name(manufacturer m) { return std::string(dataset::manufacturer_short_name(m)); }

}  // namespace

std::string render_table1(const dataset::failure_database& db) {
  text_table t({"Manufacturer", "Release", "Cars", "Miles", "Miles(paper)", "Diseng.",
                "Diseng.(paper)", "Accidents", "Acc.(paper)"});
  t.set_title("Table I: fleet size, autonomous miles, and failure incidents");
  t.set_alignment({align::left, align::right, align::right, align::right, align::right,
                   align::right, align::right, align::right, align::right});
  for (const auto& row : build_table1(db)) {
    const auto* paper = gt::table1_row_or_null(row.maker, row.report_year);
    t.add_row({name(row.maker), std::to_string(row.report_year), opt_int(row.cars),
               opt_num(row.miles, 7), paper ? opt_num(paper->miles, 7) : "-",
               opt_ll(row.disengagements), paper ? opt_ll(paper->disengagements) : "-",
               opt_ll(row.accidents), paper ? opt_ll(paper->accidents) : "-"});
  }
  return t.render();
}

std::string render_table4(const dataset::failure_database& db,
                          const std::vector<manufacturer>& makers) {
  text_table t({"Manufacturer", "Planner/Ctrl", "paper", "Perception", "paper", "System",
                "paper", "Unknown-C", "paper"});
  t.set_title("Table IV: disengagement root-cause categories (% of each maker's events)");
  const auto rows = build_table4(db, makers);
  for (const auto& row : rows) {
    const gt::category_mix* paper = nullptr;
    for (const auto& mix : gt::table4()) {
      if (mix.maker == row.maker) paper = &mix;
    }
    const auto pct = [](double f) { return format_percent(f, 2); };
    t.add_row({name(row.maker), pct(row.planner_controller),
               paper ? pct(paper->planner_controller) : "-", pct(row.perception_recognition),
               paper ? pct(paper->perception_recognition) : "-", pct(row.system),
               paper ? pct(paper->system) : "-", pct(row.unknown),
               paper ? pct(paper->unknown) : "-"});
  }
  return t.render();
}

std::string render_table5(const dataset::failure_database& db,
                          const std::vector<manufacturer>& makers) {
  text_table t({"Manufacturer", "Automatic", "paper", "Manual", "paper", "Planned", "paper"});
  t.set_title("Table V: disengagement modality (% of each maker's events)");
  for (const auto& row : build_table5(db, makers)) {
    const gt::modality_mix* paper = nullptr;
    for (const auto& mix : gt::table5()) {
      if (mix.maker == row.maker) paper = &mix;
    }
    const auto pct = [](double f) { return format_percent(f, 2); };
    t.add_row({name(row.maker), pct(row.automatic), paper ? pct(paper->automatic) : "-",
               pct(row.manual), paper ? pct(paper->manual) : "-", pct(row.planned),
               paper ? pct(paper->planned) : "-"});
  }
  return t.render();
}

std::string render_table6(const dataset::failure_database& db) {
  text_table t({"Manufacturer", "Accidents", "paper", "Fraction", "paper", "DPA", "paper"});
  t.set_title("Table VI: accidents reported by manufacturers");
  for (const auto& row : build_table6(db)) {
    const gt::accident_row* paper = nullptr;
    for (const auto& p : gt::table6()) {
      if (p.maker == row.maker) paper = &p;
    }
    t.add_row({name(row.maker), std::to_string(row.accidents),
               paper ? std::to_string(paper->accidents) : "-",
               format_percent(row.fraction_of_total, 2),
               paper ? format_percent(paper->fraction_of_total, 2) : "-", opt_num(row.dpa, 3),
               paper && paper->dpa ? format_number(*paper->dpa, 3) : "-"});
  }
  return t.render();
}

std::string render_table7(const dataset::failure_database& db,
                          const std::vector<manufacturer>& makers) {
  text_table t({"Manufacturer", "Median DPM", "paper", "Median APM", "paper", "vs human",
                "paper"});
  t.set_title("Table VII: reliability of AVs compared to human drivers");
  for (const auto& row : build_table7(db, makers)) {
    const gt::reliability_row* paper = nullptr;
    for (const auto& p : gt::table7()) {
      if (p.maker == row.maker) paper = &p;
    }
    t.add_row({name(row.maker), opt_num(row.median_dpm, 3),
               paper ? format_number(paper->median_dpm, 3) : "-", opt_num(row.median_apm, 3),
               paper && paper->median_apm ? format_number(*paper->median_apm, 3) : "-",
               row.vs_human ? format_ratio(*row.vs_human, 4) : "-",
               paper && paper->relative_to_human ? format_ratio(*paper->relative_to_human, 4)
                                                 : "-"});
  }
  return t.render();
}

std::string render_table8(const dataset::failure_database& db) {
  text_table t({"Manufacturer", "APMi", "paper", "vs airline", "paper", "vs surg.robot",
                "paper"});
  t.set_title("Table VIII: reliability vs other safety-critical autonomous systems");
  for (const auto& row : build_table8(db)) {
    const gt::mission_row* paper = nullptr;
    for (const auto& p : gt::table8()) {
      if (p.maker == row.maker) paper = &p;
    }
    t.add_row({name(row.maker), format_number(row.apmi, 3),
               paper ? format_number(paper->apmi, 3) : "-", format_ratio(row.vs_airline, 4),
               paper ? format_ratio(paper->vs_airline, 4) : "-",
               format_ratio(row.vs_surgical_robot, 3),
               paper ? format_ratio(paper->vs_surgical_robot, 3) : "-"});
  }
  return t.render();
}

std::string render_fig4(const dataset::failure_database& db,
                        const std::vector<manufacturer>& makers) {
  text_table t({"Manufacturer", "min", "Q1", "median", "Q3", "max", "n(cars)"});
  t.set_title("Fig. 4: per-car DPM distributions (disengagements / mile)");
  for (const auto& s : build_fig4(db, makers)) {
    t.add_row({name(s.maker), format_number(s.box.whisker_low, 3), format_number(s.box.q1, 3),
               format_number(s.box.median, 3), format_number(s.box.q3, 3),
               format_number(s.box.whisker_high, 3), std::to_string(s.box.n)});
  }
  return t.render();
}

std::string render_fig5(const dataset::failure_database& db,
                        const std::vector<manufacturer>& makers) {
  text_table t({"Manufacturer", "months", "final cum. miles", "final cum. diseng.",
                "log-log slope", "R^2"});
  t.set_title("Fig. 5: cumulative disengagements vs cumulative miles (log-log fits)");
  for (const auto& s : build_fig5(db, makers)) {
    if (s.cumulative_miles.empty()) continue;
    t.add_row({name(s.maker), std::to_string(s.cumulative_miles.size()),
               format_number(s.cumulative_miles.back(), 6),
               format_number(s.cumulative_disengagements.back(), 5),
               s.log_log_fit ? format_number(s.log_log_fit->slope, 3) : "-",
               s.log_log_fit ? format_number(s.log_log_fit->r_squared, 3) : "-"});
  }
  return t.render();
}

std::string render_fig6(const dataset::failure_database& db,
                        const std::vector<manufacturer>& makers) {
  std::string out = "Fig. 6: fault-tag fractions per manufacturer\n";
  for (const auto& row : build_tag_fractions(db, makers)) {
    out += name(row.maker) + " (n=" + std::to_string(row.total) + "):\n";
    for (const auto& [tag, fraction] : row.fractions) {
      if (fraction <= 0) continue;
      out += "  " + std::string(nlp::tag_name(tag));
      // Distinguish the two AV Controller tags in text output.
      if (tag == nlp::fault_tag::av_controller_ml) out += " (ML)";
      if (tag == nlp::fault_tag::av_controller_system) out += " (Sys)";
      out += ": " + format_percent(fraction, 1) + "\n";
    }
  }
  return out;
}

std::string render_fig7(const dataset::failure_database& db,
                        const std::vector<manufacturer>& makers) {
  text_table t({"Manufacturer", "Year", "min", "Q1", "median", "Q3", "max", "n"});
  t.set_title("Fig. 7: per-car DPM by calendar year");
  for (const auto& s : build_fig7(db, makers)) {
    for (const auto& [year, box] : s.by_year) {
      t.add_row({name(s.maker), std::to_string(year), format_number(box.whisker_low, 3),
                 format_number(box.q1, 3), format_number(box.median, 3),
                 format_number(box.q3, 3), format_number(box.whisker_high, 3),
                 std::to_string(box.n)});
    }
  }
  return t.render();
}

std::string render_fig8(const dataset::failure_database& db,
                        const std::vector<manufacturer>& makers) {
  const auto data = build_fig8(db, makers);
  std::string out = "Fig. 8: log(DPM) vs log(cumulative miles), pooled per vehicle-month\n";
  out += "  points: " + std::to_string(data.log_dpm.size()) + "\n";
  out += "  Pearson r: " + format_number(data.pearson.r, 3) +
         "  (paper: " + format_number(gt::k_fig8_pearson_r, 3) + ")\n";
  out += "  p-value:   " + format_number(data.pearson.p_value, 3) + "\n";
  return out;
}

std::string render_fig9(const dataset::failure_database& db,
                        const std::vector<manufacturer>& makers) {
  text_table t({"Manufacturer", "months", "first DPM", "last DPM", "log-log slope", "R^2"});
  t.set_title("Fig. 9: monthly DPM vs cumulative miles (log-log fits per manufacturer)");
  for (const auto& s : build_fig9(db, makers)) {
    if (s.dpm.empty()) continue;
    t.add_row({name(s.maker), std::to_string(s.dpm.size()), format_number(s.dpm.front(), 3),
               format_number(s.dpm.back(), 3),
               s.log_log_fit ? format_number(s.log_log_fit->slope, 3) : "-",
               s.log_log_fit ? format_number(s.log_log_fit->r_squared, 3) : "-"});
  }
  return t.render();
}

std::string render_fig10(const dataset::failure_database& db,
                         const std::vector<manufacturer>& makers) {
  text_table t({"Manufacturer", "min", "Q1", "median", "Q3", "max", "mean", "n"});
  t.set_title("Fig. 10: driver reaction times (seconds)");
  for (const auto& s : build_fig10(db, makers)) {
    t.add_row({name(s.maker), format_number(s.box.whisker_low, 3), format_number(s.box.q1, 3),
               format_number(s.box.median, 3), format_number(s.box.q3, 3),
               format_number(s.box.whisker_high, 4), format_number(s.mean, 3),
               std::to_string(s.n)});
  }
  return t.render();
}

std::string render_fig11(const dataset::failure_database& db,
                         const std::vector<manufacturer>& makers) {
  text_table t({"Manufacturer", "n", "Weibull shape", "Weibull scale", "KS p", "ExpW shape",
                "ExpW scale", "ExpW power", "KS p(ExpW)"});
  t.set_title("Fig. 11: Weibull-family fits of reaction times");
  for (const auto& f : build_fig11(db, makers)) {
    t.add_row({name(f.maker), std::to_string(f.n), format_number(f.weibull.shape(), 3),
               format_number(f.weibull.scale(), 3), format_number(f.ks_p_weibull, 2),
               format_number(f.exp_weibull.shape(), 3), format_number(f.exp_weibull.scale(), 3),
               format_number(f.exp_weibull.power(), 3), format_number(f.ks_p_exp_weibull, 2)});
  }
  return t.render();
}

std::string render_fig12(const dataset::failure_database& db) {
  const auto data = build_fig12(db);
  std::string out = "Fig. 12: accident speed distributions (mph)\n";
  const auto line = [](const char* label, const std::vector<double>& xs,
                       const std::optional<stats::exponential_dist>& fit) {
    std::string s = "  ";
    s += label;
    s += ": n=" + std::to_string(xs.size());
    if (fit) s += ", exponential mean=" + format_number(fit->mean(), 3);
    s += "\n";
    return s;
  };
  out += line("AV speed      ", data.av_speeds, data.av_fit);
  out += line("Other vehicle ", data.other_speeds, data.other_fit);
  out += line("Relative speed", data.relative_speeds, data.relative_fit);
  out += "  relative speed < 10 mph: " + format_percent(data.fraction_relative_below_10mph, 1) +
         "  (paper: > " + format_percent(gt::k_fig12_low_speed_fraction, 0) + ")\n";
  return out;
}

std::string render_headlines(const dataset::failure_database& db,
                             const std::vector<manufacturer>& makers) {
  text_table t({"Claim", "Paper", "Measured", "Tolerance", "OK"});
  t.set_title("Headline claims: paper vs measured");
  for (const auto& claim : evaluate_headlines(db, makers)) {
    t.add_row({claim.name, format_number(claim.paper_value, 4),
               format_number(claim.measured_value, 4),
               format_percent(claim.tolerance_fraction, 0),
               claim.within_tolerance() ? "yes" : "NO"});
  }
  return t.render();
}

std::string render_pipeline_stats(const pipeline_stats& stats) {
  std::string out = "Pipeline statistics\n";
  out += "  documents in:            " + std::to_string(stats.documents_in) + "\n";
  out += "  disengagement reports:   " + std::to_string(stats.disengagement_reports) + "\n";
  out += "  accident reports:        " + std::to_string(stats.accident_reports) + "\n";
  out += "  unidentified documents:  " + std::to_string(stats.unidentified_documents) + "\n";
  out += "  OCR lines:               " + std::to_string(stats.ocr_lines) + "\n";
  out += "  OCR mean confidence:     " + format_number(stats.ocr_mean_confidence, 3) + "\n";
  out += "  OCR manual-review lines: " + std::to_string(stats.ocr_manual_review_lines) + "\n";
  out += "  manual transcriptions:   " + std::to_string(stats.manual_transcriptions) + "\n";
  out += "  unparseable lines:       " + std::to_string(stats.parse_failed_lines) + "\n";
  out += "  disengagements parsed:   " + std::to_string(stats.disengagements) + "\n";
  out += "  accidents parsed:        " + std::to_string(stats.accidents) + "\n";
  out += "  Unknown-T tags:          " + std::to_string(stats.unknown_tags) + "\n";
  out += "  analyzed manufacturers:  " + std::to_string(stats.analyzed.size()) + "\n";
  out += render_stage_timings(stats);
  return out;
}

std::string render_stage_timings(const pipeline_stats& stats) {
  if (stats.stage_timings.empty()) return "";
  std::string out = "Stage timings (wall-clock)\n";
  for (const auto& t : stats.stage_timings) {
    const double share =
        stats.total_seconds > 0 ? 100.0 * t.seconds / stats.total_seconds : 0.0;
    char line[96];
    std::snprintf(line, sizeof(line), "  %-10s %9.3f ms  %5.1f%%\n", t.stage.c_str(),
                  t.seconds * 1e3, share);
    out += line;
  }
  char total[64];
  std::snprintf(total, sizeof(total), "  %-10s %9.3f ms\n", "total", stats.total_seconds * 1e3);
  out += total;
  return out;
}

std::string render_full_report(const dataset::failure_database& db,
                               const std::vector<manufacturer>& makers) {
  std::string out;
  out += render_table1(db) + "\n";
  out += render_fig4(db, makers) + "\n";
  out += render_fig5(db, makers) + "\n";
  out += render_table4(db, makers) + "\n";
  out += render_fig6(db, makers) + "\n";
  out += render_table5(db, makers) + "\n";
  out += render_fig7(db, makers) + "\n";
  out += render_fig8(db, makers) + "\n";
  out += render_fig9(db, makers) + "\n";
  out += render_fig10(db, makers) + "\n";
  out += render_fig11(db, makers) + "\n";
  out += render_table6(db) + "\n";
  out += render_table7(db, makers) + "\n";
  out += render_fig12(db) + "\n";
  out += render_table8(db) + "\n";
  out += render_headlines(db, makers) + "\n";
  return out;
}

}  // namespace avtk::core
