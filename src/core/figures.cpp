#include "core/figures.h"

#include <algorithm>
#include <cmath>
#include <map>

#include "core/metrics.h"
#include "stats/tests.h"

namespace avtk::core {

using dataset::manufacturer;

std::vector<monthly_point> build_monthly_trend(const dataset::database_view& db,
                                               manufacturer maker) {
  std::map<std::int64_t, monthly_point> cells;
  for (const auto& vm : db.vehicle_months()) {
    if (vm.maker != maker) continue;
    auto& c = cells[vm.month.index()];
    c.month = vm.month;
    c.miles += vm.miles;
    c.disengagements += vm.disengagements;
  }
  std::vector<monthly_point> out;
  out.reserve(cells.size());
  for (auto& [index, cell] : cells) out.push_back(cell);
  return out;
}

std::vector<fig4_series> build_fig4(const dataset::database_view& db,
                                    const std::vector<manufacturer>& makers) {
  std::vector<fig4_series> out;
  for (const auto maker : makers) {
    const auto dpms = per_car_dpm(db, maker);
    if (dpms.empty()) continue;
    out.push_back(fig4_series{maker, stats::summarize_box(dpms)});
  }
  return out;
}

std::vector<fig5_series> build_fig5(const dataset::database_view& db,
                                    const std::vector<manufacturer>& makers) {
  std::vector<fig5_series> out;
  for (const auto maker : makers) {
    fig5_series s;
    s.maker = maker;
    double cum_miles = 0;
    double cum_events = 0;
    for (const auto& cell : build_monthly_trend(db, maker)) {
      cum_miles += cell.miles;
      cum_events += static_cast<double>(cell.disengagements);
      s.cumulative_miles.push_back(cum_miles);
      s.cumulative_disengagements.push_back(cum_events);
    }
    // Log-log fit over months with positive coordinates.
    std::vector<double> xs;
    std::vector<double> ys;
    for (std::size_t i = 0; i < s.cumulative_miles.size(); ++i) {
      if (s.cumulative_miles[i] > 0 && s.cumulative_disengagements[i] > 0) {
        xs.push_back(s.cumulative_miles[i]);
        ys.push_back(s.cumulative_disengagements[i]);
      }
    }
    if (xs.size() >= 2) s.log_log_fit = stats::fit_log_log(xs, ys);
    out.push_back(std::move(s));
  }
  return out;
}

std::vector<fig7_series> build_fig7(const dataset::database_view& db,
                                    const std::vector<manufacturer>& makers) {
  std::vector<fig7_series> out;
  for (const auto maker : makers) {
    fig7_series s;
    s.maker = maker;
    for (const int year : {2014, 2015, 2016}) {
      const auto dpms = per_car_dpm_in_year(db, maker, year);
      if (!dpms.empty()) s.by_year.emplace(year, stats::summarize_box(dpms));
    }
    if (!s.by_year.empty()) out.push_back(std::move(s));
  }
  return out;
}

fig8_data build_fig8(const dataset::database_view& db,
                     const std::vector<manufacturer>& makers) {
  fig8_data out;
  for (const auto maker : makers) {
    // Fleet cumulative miles indexed by month.
    std::map<std::int64_t, double> fleet_cum;
    {
      double cum = 0;
      for (const auto& cell : build_monthly_trend(db, maker)) {
        cum += cell.miles;
        fleet_cum[cell.month.index()] = cum;
      }
    }
    for (const auto& vm : db.vehicle_months()) {
      if (vm.maker != maker || !(vm.miles > 0) || vm.disengagements <= 0) continue;
      const double dpm = static_cast<double>(vm.disengagements) / vm.miles;
      const double cum = fleet_cum[vm.month.index()];
      if (cum > 0) {
        out.log_cumulative_miles.push_back(std::log(cum));
        out.log_dpm.push_back(std::log(dpm));
      }
    }
  }
  if (out.log_dpm.size() >= 3) {
    out.pearson = stats::pearson(out.log_cumulative_miles, out.log_dpm);
  }
  return out;
}

std::vector<fig9_series> build_fig9(const dataset::database_view& db,
                                    const std::vector<manufacturer>& makers) {
  std::vector<fig9_series> out;
  for (const auto maker : makers) {
    fig9_series s;
    s.maker = maker;
    double cum = 0;
    for (const auto& cell : build_monthly_trend(db, maker)) {
      cum += cell.miles;
      if (cell.miles > 0 && cell.disengagements > 0) {
        s.cumulative_miles.push_back(cum);
        s.dpm.push_back(cell.dpm());
      }
    }
    if (s.cumulative_miles.size() >= 2) {
      s.log_log_fit = stats::fit_log_log(s.cumulative_miles, s.dpm);
    }
    out.push_back(std::move(s));
  }
  return out;
}

std::vector<fig10_series> build_fig10(const dataset::database_view& db,
                                      const std::vector<manufacturer>& makers) {
  std::vector<fig10_series> out;
  for (const auto maker : makers) {
    const auto rts = db.reaction_times(maker);
    if (rts.empty()) continue;
    fig10_series s;
    s.maker = maker;
    s.box = stats::summarize_box(rts);
    s.mean = stats::mean(rts);
    s.n = rts.size();
    out.push_back(s);
  }
  return out;
}

std::vector<fig11_fit> build_fig11(const dataset::database_view& db,
                                   const std::vector<manufacturer>& makers,
                                   std::size_t min_samples, double outlier_cut_s) {
  std::vector<fig11_fit> out;
  for (const auto maker : makers) {
    auto rts = db.reaction_times(maker);
    std::erase_if(rts, [&](double t) { return !(t > 0) || t > outlier_cut_s; });
    if (rts.size() < min_samples) continue;
    const auto w = stats::weibull_dist::fit(rts);
    const auto ew = stats::exp_weibull_dist::fit(rts);
    fig11_fit fit(maker, w, ew);
    fit.n = rts.size();
    fit.ks_p_weibull = stats::ks_test(rts, [&](double x) { return w.cdf(x); }).p_value;
    fit.ks_p_exp_weibull = stats::ks_test(rts, [&](double x) { return ew.cdf(x); }).p_value;
    out.push_back(fit);
  }
  return out;
}

fig12_data build_fig12(const dataset::database_view& db) {
  fig12_data out;
  for (const auto& a : db.accidents()) {
    if (a.av_speed_mph) out.av_speeds.push_back(*a.av_speed_mph);
    if (a.other_speed_mph) out.other_speeds.push_back(*a.other_speed_mph);
    if (const auto rel = a.relative_speed_mph()) out.relative_speeds.push_back(*rel);
  }
  const auto fit_if_possible = [](const std::vector<double>& xs)
      -> std::optional<stats::exponential_dist> {
    if (xs.size() < 3) return std::nullopt;
    double sum = 0;
    for (double x : xs) sum += x;
    if (!(sum > 0)) return std::nullopt;
    return stats::exponential_dist::fit(xs);
  };
  out.av_fit = fit_if_possible(out.av_speeds);
  out.other_fit = fit_if_possible(out.other_speeds);
  out.relative_fit = fit_if_possible(out.relative_speeds);
  if (!out.relative_speeds.empty()) {
    const auto below =
        std::count_if(out.relative_speeds.begin(), out.relative_speeds.end(),
                      [](double v) { return v < 10.0; });
    out.fraction_relative_below_10mph =
        static_cast<double>(below) / static_cast<double>(out.relative_speeds.size());
  }
  return out;
}

std::vector<reaction_correlation> build_reaction_correlations(
    const dataset::database_view& db, const std::vector<manufacturer>& makers,
    std::size_t min_samples) {
  std::vector<reaction_correlation> out;
  for (const auto maker : makers) {
    // Fleet cumulative miles at each month.
    std::map<std::int64_t, double> fleet_cum;
    {
      double cum = 0;
      for (const auto& cell : build_monthly_trend(db, maker)) {
        cum += cell.miles;
        fleet_cum[cell.month.index()] = cum;
      }
    }
    std::vector<double> miles;
    std::vector<double> rts;
    for (const auto* d : db.disengagements_of(maker)) {
      if (!d->reaction_time_s) continue;
      const auto bucket = d->month_bucket();
      if (!bucket) continue;
      const auto it = fleet_cum.find(bucket->index());
      if (it == fleet_cum.end() || !(it->second > 0)) continue;
      miles.push_back(it->second);
      rts.push_back(*d->reaction_time_s);
    }
    if (miles.size() < min_samples) continue;
    out.push_back(reaction_correlation{maker, stats::pearson(miles, rts)});
  }
  return out;
}

}  // namespace avtk::core
