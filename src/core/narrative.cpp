#include "core/narrative.h"

#include <cmath>

#include "core/analysis.h"
#include "dataset/ground_truth.h"
#include "util/table.h"

namespace avtk::core {

using dataset::manufacturer;
namespace gt = dataset::ground_truth;

std::vector<conclusion> evaluate_conclusions(const dataset::failure_database& db,
                                             const std::vector<manufacturer>& makers) {
  std::vector<conclusion> out;
  const auto q1 = answer_q1(db, makers);
  const auto q2 = answer_q2(db, makers);
  const auto q3 = answer_q3(db, makers);
  const auto q4 = answer_q4(db, makers);
  const auto q5 = answer_q5(db, makers);

  // Abstract conclusion 1: drivers of AVs need to be as alert as drivers of
  // non-AVs (mean reaction time at or below the 1.09 s human baseline, so
  // the driver is doing real work, and the action window is small).
  {
    conclusion c;
    c.id = "abstract-1";
    c.statement =
        "Drivers of AVs need to be as alert as drivers of non-AVs; the small "
        "detection+reaction window makes reaction-time accidents a real failure mode.";
    c.evidence = "mean reaction time " + format_number(q4.overall_mean_s, 3) +
                 " s over " + std::to_string(q4.overall_n) +
                 " takeovers, vs the 1.09 s owned-vehicle human baseline; reaction time "
                 "correlates positively with cumulative miles for the heavy reporters";
    int positive = 0;
    for (const auto& rc : q4.vs_miles) {
      if ((rc.maker == manufacturer::waymo || rc.maker == manufacturer::mercedes_benz) &&
          rc.result.r > 0) {
        ++positive;
      }
    }
    c.supported = q4.overall_mean_s > 0.3 && q4.overall_mean_s < 1.09 && positive == 2;
    out.push_back(std::move(c));
  }

  // Abstract conclusion 2: AVs are 15-4000x worse than human drivers in APM.
  {
    conclusion c;
    c.id = "abstract-2";
    c.statement =
        "For the manufacturers that reported accidents, human-driven non-AVs are orders of "
        "magnitude (the paper: 15-4000x) less likely to have an accident per mile.";
    c.evidence = "measured vs-human ratios span " + format_ratio(q5.best_vs_human, 3) +
                 " to " + format_ratio(q5.worst_vs_human, 4);
    c.supported = q5.best_vs_human > 5.0 && q5.worst_vs_human > 1000.0;
    out.push_back(std::move(c));
  }

  // Abstract conclusion 3: ML (perception + decision/control) causes ~64%.
  {
    conclusion c;
    c.id = "abstract-3";
    c.statement =
        "The machine-learning systems for perception and decision-and-control are the "
        "primary cause (~64%) of disengagements.";
    c.evidence = "measured ML/Design share " + format_percent(q2.ml_fraction, 1) +
                 " (perception " + format_percent(q2.perception_fraction, 1) + ", planner " +
                 format_percent(q2.planner_fraction, 1) + ")";
    c.supported = std::fabs(q2.ml_fraction - gt::k_ml_fraction) < 0.10 &&
                  q2.perception_fraction > q2.planner_fraction;
    out.push_back(std::move(c));
  }

  // Abstract conclusion 4: per mission, 4.22x worse than airplanes, 2.5x
  // better than surgical robots (Waymo row of Table VIII).
  {
    conclusion c;
    c.id = "abstract-4";
    c.statement =
        "Per mission, the best AVs are single-digit-factors worse than airplanes and better "
        "than surgical robots.";
    bool found = false;
    for (const auto& row : q5.missions) {
      if (row.maker != manufacturer::waymo) continue;
      found = true;
      c.evidence = "Waymo APMi " + format_number(row.apmi, 3) + ": " +
                   format_ratio(row.vs_airline, 3) + " vs airlines (paper 4.22x), " +
                   format_ratio(row.vs_surgical_robot, 3) + " vs surgical robots (paper 0.04x)";
      c.supported = row.vs_airline > 1.0 && row.vs_airline < 10.0 &&
                    row.vs_surgical_robot < 1.0;
    }
    if (!found) {
      c.evidence = "no Waymo APMi computable";
      c.supported = false;
    }
    out.push_back(std::move(c));
  }

  // Q1: ~100x disparity in median DPM; nobody at the asymptote ("burn-in").
  {
    conclusion c;
    c.id = "q1-burn-in";
    c.statement =
        "Median DPM disparities across manufacturers are enormous, and no fleet has reached "
        "a near-zero-DPM asymptote: AV systems are still in a burn-in phase.";
    c.evidence = "median-DPM spread " + format_ratio(q1.median_dpm_spread, 4) +
                 std::string(q1.any_maker_at_asymptote ? "; an asymptote WAS reached"
                                                       : "; no maker at the asymptote");
    c.supported = q1.median_dpm_spread > 50.0 && !q1.any_maker_at_asymptote;
    out.push_back(std::move(c));
  }

  // Q3: DPM falls with cumulative miles (strong negative correlation).
  {
    conclusion c;
    c.id = "q3-improvement";
    c.statement =
        "Manufacturers continuously improve: log DPM falls with log cumulative miles "
        "(the paper: r = -0.87).";
    c.evidence = "pooled Pearson r = " + format_number(q3.pooled_correlation.pearson.r, 3) +
                 " (p = " + format_number(q3.pooled_correlation.pearson.p_value, 2) + ") over " +
                 std::to_string(q3.pooled_correlation.log_dpm.size()) + " vehicle-months";
    c.supported =
        q3.pooled_correlation.pearson.r < -0.6 && q3.pooled_correlation.pearson.p_value < 1e-10;
    out.push_back(std::move(c));
  }

  // Q5: accidents are low-speed, near intersections, mostly rear-end.
  {
    conclusion c;
    c.id = "q5-collisions";
    c.statement =
        "Accidents concentrate at low speeds near intersections (>80% of relative collision "
        "speeds below 10 mph), mostly rear-end — other drivers cannot anticipate AV behavior.";
    c.evidence = format_percent(q5.speeds.fraction_relative_below_10mph, 1) +
                 " of relative speeds below 10 mph over " +
                 std::to_string(q5.speeds.relative_speeds.size()) + " accidents";
    c.supported = q5.speeds.fraction_relative_below_10mph > 0.7;
    out.push_back(std::move(c));
  }

  return out;
}

std::string render_conclusions(const dataset::failure_database& db,
                               const std::vector<manufacturer>& makers) {
  std::string out = "Reproduced conclusions (paper claim -> measured evidence):\n";
  int i = 1;
  for (const auto& c : evaluate_conclusions(db, makers)) {
    out += "\n" + std::to_string(i++) + ") [" + (c.supported ? "SUPPORTED" : "NOT SUPPORTED") +
           "] " + c.statement + "\n   evidence: " + c.evidence + "\n";
  }
  return out;
}

}  // namespace avtk::core
