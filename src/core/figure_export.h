// avtk/core/figure_export.h
//
// Plot-ready exports: every figure's data series as whitespace-separated
// .dat text plus a gnuplot script that reproduces the paper's plot layout
// (log axes where the paper uses them). Downstream users regenerate the
// actual graphics with `gnuplot figN.gp`.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "dataset/database.h"

namespace avtk::core {

/// One exported file: relative name -> contents.
using export_bundle = std::map<std::string, std::string>;

/// Exports the data series + gnuplot script for one figure. Figures with
/// several series produce one .dat per manufacturer.
export_bundle export_fig4(const dataset::failure_database& db,
                          const std::vector<dataset::manufacturer>& makers);
export_bundle export_fig5(const dataset::failure_database& db,
                          const std::vector<dataset::manufacturer>& makers);
export_bundle export_fig8(const dataset::failure_database& db,
                          const std::vector<dataset::manufacturer>& makers);
export_bundle export_fig9(const dataset::failure_database& db,
                          const std::vector<dataset::manufacturer>& makers);
export_bundle export_fig10(const dataset::failure_database& db,
                           const std::vector<dataset::manufacturer>& makers);
export_bundle export_fig11(const dataset::failure_database& db,
                           const std::vector<dataset::manufacturer>& makers);
export_bundle export_fig12(const dataset::failure_database& db);

/// Everything at once, with per-figure name prefixes ("fig4/", "fig5/", ...).
export_bundle export_all_figures(const dataset::failure_database& db,
                                 const std::vector<dataset::manufacturer>& makers);

/// Writes a bundle under `directory` (created if needed); returns the
/// number of files written.
std::size_t write_bundle(const export_bundle& bundle, const std::string& directory);

}  // namespace avtk::core
