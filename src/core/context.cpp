#include "core/context.h"

#include <algorithm>

#include "util/table.h"

namespace avtk::core {

using dataset::road_type;
using dataset::weather;

std::vector<road_mix_row> build_road_mix(const dataset::database_view& db) {
  std::map<road_type, long long> counts;
  long long known = 0;
  for (const auto& d : db.disengagements()) {
    if (d.road == road_type::unknown) continue;
    ++counts[d.road];
    ++known;
  }
  std::vector<road_mix_row> out;
  for (const auto& [road, events] : counts) {
    out.push_back({road, events,
                   known > 0 ? static_cast<double>(events) / static_cast<double>(known) : 0});
  }
  std::sort(out.begin(), out.end(),
            [](const road_mix_row& a, const road_mix_row& b) { return a.events > b.events; });
  return out;
}

std::vector<weather_mix_row> build_weather_mix(const dataset::database_view& db) {
  std::map<weather, long long> counts;
  long long known = 0;
  for (const auto& d : db.disengagements()) {
    if (d.conditions == weather::unknown) continue;
    ++counts[d.conditions];
    ++known;
  }
  std::vector<weather_mix_row> out;
  for (const auto& [conditions, events] : counts) {
    out.push_back({conditions, events,
                   known > 0 ? static_cast<double>(events) / static_cast<double>(known) : 0});
  }
  std::sort(out.begin(), out.end(), [](const weather_mix_row& a, const weather_mix_row& b) {
    return a.events > b.events;
  });
  return out;
}

std::vector<weather_environment_row> build_weather_environment(
    const dataset::database_view& db) {
  struct cell {
    long long events = 0;
    long long perception = 0;
  };
  std::map<weather, cell> cells;
  for (const auto& d : db.disengagements()) {
    if (d.conditions == weather::unknown) continue;
    auto& c = cells[d.conditions];
    ++c.events;
    if (nlp::ml_subcategory_of(d.tag) == nlp::ml_subcategory::perception_recognition) {
      ++c.perception;
    }
  }
  std::vector<weather_environment_row> out;
  for (const auto& [conditions, c] : cells) {
    weather_environment_row row;
    row.conditions = conditions;
    row.events = c.events;
    row.perception_share =
        c.events > 0 ? static_cast<double>(c.perception) / static_cast<double>(c.events) : 0;
    out.push_back(row);
  }
  std::sort(out.begin(), out.end(),
            [](const weather_environment_row& a, const weather_environment_row& b) {
              return a.events > b.events;
            });
  return out;
}

std::string render_context_breakdown(const dataset::database_view& db) {
  std::string out;
  {
    text_table t({"Road type", "Events", "Share"});
    t.set_title(
        "Disengagements by road type (reporters only; corpus miles: 31.7% city, "
        "29.3% highway, 14.6% interstate, 9.8% freeway)");
    for (const auto& row : build_road_mix(db)) {
      t.add_row({std::string(dataset::road_type_name(row.road)), std::to_string(row.events),
                 format_percent(row.share, 1)});
    }
    out += t.render();
  }
  out += "\n";
  {
    text_table t({"Weather", "Events", "Share", "Perception-tagged share"});
    t.set_title("Disengagements by weather (the SVI 'not all miles are equivalent' threat)");
    const auto env = build_weather_environment(db);
    for (const auto& row : build_weather_mix(db)) {
      double perception = 0;
      for (const auto& e : env) {
        if (e.conditions == row.conditions) perception = e.perception_share;
      }
      t.add_row({std::string(dataset::weather_name(row.conditions)),
                 std::to_string(row.events), format_percent(row.share, 1),
                 format_percent(perception, 1)});
    }
    out += t.render();
  }
  return out;
}

}  // namespace avtk::core
