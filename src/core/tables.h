// avtk/core/tables.h
//
// Builders for each table in the paper's evaluation, computed from a
// failure_database. Each builder returns plain data; rendering to text
// lives in core/report.h.
#pragma once

#include <map>
#include <optional>
#include <vector>

#include "core/metrics.h"
#include "dataset/view.h"
#include "nlp/ontology.h"

namespace avtk::core {

// ---------------------------------------------------------------- Table I
struct table1_row {
  dataset::manufacturer maker;
  int report_year;
  std::optional<int> cars;
  std::optional<double> miles;
  std::optional<long long> disengagements;
  std::optional<long long> accidents;
};
/// Fleet summary per (manufacturer, release), from the parsed corpus.
std::vector<table1_row> build_table1(const dataset::database_view& db);

// --------------------------------------------------------------- Table IV
struct table4_row {
  dataset::manufacturer maker;
  double planner_controller = 0;      ///< fraction of that maker's events
  double perception_recognition = 0;
  double system = 0;
  double unknown = 0;
  long long total = 0;
};
/// Category mix per manufacturer (only manufacturers in `makers`).
std::vector<table4_row> build_table4(const dataset::database_view& db,
                                     const std::vector<dataset::manufacturer>& makers);

// ---------------------------------------------------------------- Table V
struct table5_row {
  dataset::manufacturer maker;
  double automatic = 0;
  double manual = 0;
  double planned = 0;
  long long total = 0;
};
std::vector<table5_row> build_table5(const dataset::database_view& db,
                                     const std::vector<dataset::manufacturer>& makers);

// --------------------------------------------------------------- Table VI
struct table6_row {
  dataset::manufacturer maker;
  long long accidents = 0;
  double fraction_of_total = 0;
  std::optional<double> dpa;
};
std::vector<table6_row> build_table6(const dataset::database_view& db);

// -------------------------------------------------------------- Table VII
struct table7_row {
  dataset::manufacturer maker;
  std::optional<double> median_dpm;
  std::optional<double> median_apm;
  std::optional<double> vs_human;
};
std::vector<table7_row> build_table7(const dataset::database_view& db,
                                     const std::vector<dataset::manufacturer>& makers);

// ------------------------------------------------------------- Table VIII
struct table8_row {
  dataset::manufacturer maker;
  double apmi = 0;
  double vs_airline = 0;
  double vs_surgical_robot = 0;
};
/// Only manufacturers with computable APM appear.
std::vector<table8_row> build_table8(const dataset::database_view& db);

// ------------------------------------------------- Fig. 6 (tag fractions)
struct tag_fraction_row {
  dataset::manufacturer maker;
  std::map<nlp::fault_tag, double> fractions;  ///< sums to 1 per maker
  long long total = 0;
};
std::vector<tag_fraction_row> build_tag_fractions(
    const dataset::database_view& db, const std::vector<dataset::manufacturer>& makers);

}  // namespace avtk::core
