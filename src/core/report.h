// avtk/core/report.h
//
// Text rendering of every table and figure, side by side with the paper's
// published values where they exist. Used by the bench harnesses, the
// examples, and EXPERIMENTS.md generation.
#pragma once

#include <string>

#include "core/analysis.h"
#include "core/pipeline.h"
#include "dataset/database.h"

namespace avtk::core {

std::string render_table1(const dataset::failure_database& db);
std::string render_table4(const dataset::failure_database& db,
                          const std::vector<dataset::manufacturer>& makers);
std::string render_table5(const dataset::failure_database& db,
                          const std::vector<dataset::manufacturer>& makers);
std::string render_table6(const dataset::failure_database& db);
std::string render_table7(const dataset::failure_database& db,
                          const std::vector<dataset::manufacturer>& makers);
std::string render_table8(const dataset::failure_database& db);

std::string render_fig4(const dataset::failure_database& db,
                        const std::vector<dataset::manufacturer>& makers);
std::string render_fig5(const dataset::failure_database& db,
                        const std::vector<dataset::manufacturer>& makers);
std::string render_fig6(const dataset::failure_database& db,
                        const std::vector<dataset::manufacturer>& makers);
std::string render_fig7(const dataset::failure_database& db,
                        const std::vector<dataset::manufacturer>& makers);
std::string render_fig8(const dataset::failure_database& db,
                        const std::vector<dataset::manufacturer>& makers);
std::string render_fig9(const dataset::failure_database& db,
                        const std::vector<dataset::manufacturer>& makers);
std::string render_fig10(const dataset::failure_database& db,
                         const std::vector<dataset::manufacturer>& makers);
std::string render_fig11(const dataset::failure_database& db,
                         const std::vector<dataset::manufacturer>& makers);
std::string render_fig12(const dataset::failure_database& db);

std::string render_headlines(const dataset::failure_database& db,
                             const std::vector<dataset::manufacturer>& makers);

std::string render_pipeline_stats(const pipeline_stats& stats);

/// The `stage_timings` breakdown alone (also included in
/// render_pipeline_stats); empty string when no timings were recorded.
std::string render_stage_timings(const pipeline_stats& stats);

/// The whole report: every table and figure plus headline checks.
std::string render_full_report(const dataset::failure_database& db,
                               const std::vector<dataset::manufacturer>& makers);

}  // namespace avtk::core
