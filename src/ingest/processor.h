// avtk/ingest/processor.h
//
// The shared per-document ingestion path: one document in, either a typed
// record batch out or a quarantined_document carrying the error-code
// taxonomy. This is the paper's Stage II/III chain (mock-OCR recovery →
// header identification → per-manufacturer parse → normalization →
// Stage-III labeling) factored out of the monolithic batch pipeline so
// batch (core::run_pipeline) and online (serve::query_engine::
// ingest_document) ingestion share one code path — the record-at-a-time
// processor that stream systems extract from their batch jobs.
//
// Two entry points:
//
//   scan()     Stage II only (OCR + identify + parse). The batch driver
//              fans this out per document and keeps merge / corpus-wide
//              normalization / batch labeling to itself, so its output is
//              bit-identical to the historical monolithic pipeline.
//   process()  the full chain for one document: a strict scan, then
//              per-document normalization and Stage-III labeling through
//              the shared phrase-automaton classifier. This is the serve
//              ingestion path; the records it returns are ready to append
//              to a live failure_database.
//
// Fault model: scan()/process() never throw for document-level damage —
// the fault is captured as a quarantined_document (index, title, taxonomy
// code, message) and the caller's policy decides what to do with it. The
// `error_policy` enum (fail_fast / skip / quarantine) lives here because
// every ingestion surface — batch runs, the serve wire protocol, the CLI —
// speaks it.
//
// Degraded-OCR retry rung: when `ocr_give_up_confidence` is positive, a
// document whose mean OCR confidence falls below the floor fails with
// error_code::ocr instead of handing the parsers garbage. Before such a
// document is quarantined the processor retries the recovery once with the
// conservative/degraded profile (ocr::engine_config::degraded(), floor
// halved); only if that rung also fails is the document refused. The
// default floor of 0 preserves the historical never-give-up behavior
// byte-for-byte.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "dataset/records.h"
#include "nlp/classifier.h"
#include "obs/clock.h"
#include "obs/trace.h"
#include "ocr/document.h"
#include "ocr/engine.h"
#include "parse/normalizer.h"
#include "util/errors.h"

namespace avtk::ingest {

/// What an ingestion surface does when one document fails to scan.
enum class error_policy { fail_fast, skip, quarantine };

/// Stable spelling ("fail_fast", "skip", "quarantine").
std::string_view error_policy_name(error_policy policy);

/// Inverse of error_policy_name; also accepts "fail-fast". Returns nullopt
/// for unknown spellings.
std::optional<error_policy> error_policy_from_name(std::string_view name);

/// One document the ingestion path refused, with enough identity to triage
/// it. The same shape flows through the batch quarantine ledger
/// (avtk.quarantine.v1), the serve reject envelope, and the inject probes.
struct quarantined_document {
  std::size_t index = 0;   ///< position in the input (batch) / submission sequence (serve)
  std::string title;       ///< ocr::document::title (may be empty)
  error_code code = error_code::internal;
  std::string message;     ///< human-readable failure description
};

/// Thrown by batch drivers under error_policy::fail_fast: the lowest-index
/// failing document, with its identity attached. The carried error_code is
/// the underlying failure's code.
class document_error : public error {
 public:
  document_error(std::size_t index, std::string title, error_code code, std::string message);

  std::size_t index() const { return index_; }
  const std::string& title() const { return title_; }
  /// The underlying failure message (what() includes the identity prefix).
  const std::string& message() const { return message_; }

 private:
  std::size_t index_;
  std::string title_;
  std::string message_;
};

struct processor_config {
  bool run_ocr = true;  ///< run mock-OCR recovery before parsing
  /// Strict Stage II scan: empty or unidentifiable documents, unparseable
  /// residue that survived the manual fallback, and structurally invalid
  /// mileage tables are promoted to document faults instead of being
  /// silently tolerated. The batch driver sets this for the skip /
  /// quarantine policies; the serve ingestion path always scans strictly.
  bool strict = false;
  /// First-attempt OCR profile.
  ocr::engine_config ocr;
  /// When positive, a document whose mean OCR confidence is below this
  /// floor fails recovery with error_code::ocr (see the degraded retry
  /// rung in the header comment). 0 = never give up (historical behavior).
  double ocr_give_up_confidence = 0.0;
  /// Retry an OCR-failed document once with the degraded profile before
  /// giving up on it.
  bool retry_degraded_ocr = true;
  /// Conservative retry profile; its give-up floor is half the standard one.
  ocr::engine_config ocr_degraded = ocr::engine_config::degraded();
  /// Normalization rules for process() (scan() leaves normalization to the
  /// batch driver, which must apply it corpus-wide).
  parse::normalizer_config normalizer;
  /// Stage-III dictionary/backend for process(); nullopt means the builtin
  /// dictionary, built lazily on first use so scan-only users (the batch
  /// driver, the inject probes) never pay for it.
  std::optional<nlp::failure_dictionary> dictionary;
  nlp::labeling_backend labeling = nlp::labeling_backend::automaton;
  /// When non-null, scans record ocr / parse (and, on containment,
  /// quarantine) spans here; process() adds a label span.
  obs::trace* trace = nullptr;
};

/// Timing sinks shared by every Stage II worker; accumulation is atomic so
/// the totals are exact regardless of thread count.
struct scan_timing {
  obs::duration_accumulator ocr_ns;
  obs::duration_accumulator parse_ns;
};

/// Everything one document's Stage II scan produced. A faulted document
/// contributes nothing but its quarantine record.
struct document_scan {
  std::vector<dataset::disengagement_record> events;
  std::vector<dataset::mileage_record> mileage;
  std::vector<dataset::accident_record> accidents;
  std::size_t ocr_lines = 0;
  double ocr_confidence_sum = 0;
  std::size_t ocr_manual_review_lines = 0;
  std::size_t parse_failed_lines = 0;
  std::size_t manual_transcriptions = 0;
  bool is_disengagement_report = false;
  bool is_accident_report = false;
  bool unidentified = false;
  bool ocr_retried = false;  ///< the degraded-OCR rung fired for this document
  std::optional<quarantined_document> fault;
};

/// One document's full Stage II/III outcome: normalized, labeled records
/// ready to append to a live failure_database — or the fault that stopped
/// it (in which case every vector is empty).
struct processed_document {
  std::vector<dataset::disengagement_record> disengagements;
  std::vector<dataset::mileage_record> mileage;
  std::vector<dataset::accident_record> accidents;
  std::size_t unknown_tags = 0;             ///< labeled Unknown-T
  std::size_t records_normalized_away = 0;  ///< dropped by normalization
  bool ocr_retried = false;
  std::optional<quarantined_document> fault;

  bool accepted() const { return !fault.has_value(); }
};

/// The record-at-a-time document processor. Immutable after construction
/// (the OCR engines and the lazily-built classifier are shared read-only),
/// so one processor is safely used from any number of threads.
class document_processor {
 public:
  explicit document_processor(processor_config config = {});

  const processor_config& config() const { return config_; }

  /// Stage II for one document. Faults are captured into the returned
  /// scan, never thrown. `timing` (optional) accumulates OCR/parse time
  /// across workers; `parent_span` parents the per-document trace spans.
  document_scan scan(const ocr::document& delivered, const ocr::document* pristine,
                     std::size_t index, scan_timing* timing = nullptr,
                     std::uint64_t parent_span = 0) const;

  /// The full per-document chain (always-strict scan → normalize → label).
  /// This is the online ingestion path; see the header comment.
  processed_document process(const ocr::document& delivered, const ocr::document* pristine = nullptr,
                             std::size_t index = 0, std::uint64_t parent_span = 0) const;

  /// The shared Stage-III classifier (built on first use).
  const nlp::keyword_voting_classifier& classifier() const;

 private:
  /// The throwing Stage II core; scan() wraps it with fault capture. Writes
  /// into `result` so partial state (the ocr_retried flag) survives a
  /// throw from a later stage.
  void scan_into(document_scan& result, const ocr::document& delivered,
                 const ocr::document* pristine, bool strict, scan_timing* timing,
                 std::uint64_t parent_span) const;

  /// OCR recovery with the give-up floor; throws ocr_error below it.
  ocr::document recover(const ocr::document& delivered, const ocr::mock_ocr_engine& engine,
                        double give_up_confidence, document_scan& result) const;

  processor_config config_;
  ocr::mock_ocr_engine engine_;
  ocr::mock_ocr_engine degraded_engine_;
  mutable std::once_flag classifier_once_;
  mutable std::unique_ptr<nlp::keyword_voting_classifier> classifier_;
};

}  // namespace avtk::ingest
