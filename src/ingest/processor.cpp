#include "ingest/processor.h"

#include <set>
#include <utility>

#include "ocr/postprocess.h"
#include "parse/accident_parser.h"
#include "parse/disengagement_parser.h"
#include "parse/report_header.h"

namespace avtk::ingest {

std::string_view error_policy_name(error_policy policy) {
  switch (policy) {
    case error_policy::fail_fast:
      return "fail_fast";
    case error_policy::skip:
      return "skip";
    case error_policy::quarantine:
      return "quarantine";
  }
  return "fail_fast";
}

std::optional<error_policy> error_policy_from_name(std::string_view name) {
  if (name == "fail_fast" || name == "fail-fast") return error_policy::fail_fast;
  if (name == "skip") return error_policy::skip;
  if (name == "quarantine") return error_policy::quarantine;
  return std::nullopt;
}

document_error::document_error(std::size_t index, std::string title, error_code code,
                               std::string message)
    : error(code, "document " + std::to_string(index) + " ('" + title + "'): " + message),
      index_(index),
      title_(std::move(title)),
      message_(std::move(message)) {}

document_processor::document_processor(processor_config config)
    : config_(std::move(config)),
      engine_(ocr::lexicon::builtin(), config_.ocr),
      degraded_engine_(ocr::lexicon::builtin(), config_.ocr_degraded) {}

const nlp::keyword_voting_classifier& document_processor::classifier() const {
  std::call_once(classifier_once_, [this] {
    classifier_ = std::make_unique<nlp::keyword_voting_classifier>(
        config_.dictionary ? *config_.dictionary : nlp::failure_dictionary::builtin(),
        config_.labeling);
  });
  return *classifier_;
}

ocr::document document_processor::recover(const ocr::document& delivered,
                                          const ocr::mock_ocr_engine& engine,
                                          double give_up_confidence,
                                          document_scan& result) const {
  // Rebuild the document with each line replaced by its OCR-recovered
  // text, preserving the page/line structure the parsers rely on.
  ocr::document out = delivered;
  for (auto& p : out.pages) {
    for (auto& line : p.lines) {
      const auto rec = engine.recognize_line(line);
      line = rec.text;
      result.ocr_confidence_sum += rec.confidence;
      ++result.ocr_lines;
      if (rec.needs_manual_review) ++result.ocr_manual_review_lines;
    }
  }
  if (give_up_confidence > 0 && result.ocr_lines > 0) {
    const double mean =
        result.ocr_confidence_sum / static_cast<double>(result.ocr_lines);
    if (mean < give_up_confidence) {
      throw ocr_error("mean recognition confidence " + std::to_string(mean) +
                      " below give-up floor " + std::to_string(give_up_confidence) + " in: " +
                      delivered.title);
    }
  }
  return out;
}

void document_processor::scan_into(document_scan& result, const ocr::document& delivered,
                                   const ocr::document* pristine, bool strict,
                                   scan_timing* timing, std::uint64_t parent_span) const {
  ocr::document recovered;
  {
    const obs::scoped_timer timer(timing != nullptr ? &timing->ocr_ns : nullptr);
    const obs::scoped_span span(config_.trace, "ocr", parent_span);
    if (!config_.run_ocr) {
      recovered = delivered;
    } else {
      try {
        recovered = recover(delivered, engine_, config_.ocr_give_up_confidence, result);
      } catch (const ocr_error&) {
        if (!config_.retry_degraded_ocr) throw;
        // The degraded rung: re-run recovery with the conservative profile
        // and half the give-up floor. The first attempt's per-line stats
        // are discarded — the retried recovery is what the parsers see.
        const obs::scoped_span retry_span(config_.trace, "ocr.retry", parent_span);
        result = document_scan{};
        result.ocr_retried = true;
        recovered = recover(delivered, degraded_engine_,
                            config_.ocr_give_up_confidence * 0.5, result);
      }
    }
  }

  const obs::scoped_timer timer(timing != nullptr ? &timing->parse_ns : nullptr);
  const obs::scoped_span span(config_.trace, "parse", parent_span);
  if (strict && delivered.line_count() == 0) {
    throw header_error("empty document: " + delivered.title);
  }
  auto id = parse::identify_report(recovered);
  if (id.kind == parse::report_kind::unknown && pristine != nullptr) {
    id = parse::identify_report(*pristine);
  }
  if (id.kind == parse::report_kind::disengagement) {
    result.is_disengagement_report = true;
    auto parsed = parse::parse_disengagement_report(recovered, pristine);
    result.parse_failed_lines = parsed.failed_lines;
    result.manual_transcriptions = parsed.manual_transcriptions;
    if (strict) {
      if (parsed.failed_lines > 0) {
        throw parse_error(std::to_string(parsed.failed_lines) +
                          " unparseable line(s) in: " + delivered.title);
      }
      // A mileage table listing the same vehicle-month twice is structural
      // damage (a duplicated page, a scanner double-feed): totals would be
      // silently inflated, so the document is refused instead.
      std::set<std::pair<std::string, std::int64_t>> seen;
      for (const auto& m : parsed.mileage) {
        if (!seen.emplace(m.vehicle_id, m.month.index()).second) {
          throw parse_error("duplicate mileage row for vehicle " + m.vehicle_id + " in " +
                            m.month.to_string() + ": " + delivered.title);
        }
      }
    }
    result.events = std::move(parsed.events);
    result.mileage = std::move(parsed.mileage);
  } else if (id.kind == parse::report_kind::accident) {
    result.is_accident_report = true;
    auto parsed = parse::parse_accident_report(recovered, pristine);
    if (parsed.used_manual_fallback) ++result.manual_transcriptions;
    result.accidents.push_back(std::move(parsed.record));
  } else if (strict) {
    throw header_error("cannot identify report kind of: " + delivered.title);
  } else {
    result.unidentified = true;
  }
}

namespace {

// On a fault the document contributes nothing but its quarantine record
// (and whether the degraded-OCR rung fired on the way down).
document_scan faulted_scan(bool ocr_retried, quarantined_document fault) {
  document_scan out;
  out.ocr_retried = ocr_retried;
  out.fault = std::move(fault);
  return out;
}

}  // namespace

document_scan document_processor::scan(const ocr::document& delivered,
                                       const ocr::document* pristine, std::size_t index,
                                       scan_timing* timing, std::uint64_t parent_span) const {
  document_scan result;
  try {
    scan_into(result, delivered, pristine, config_.strict, timing, parent_span);
  } catch (const error& e) {
    result = faulted_scan(result.ocr_retried,
                          quarantined_document{index, delivered.title, e.code(), e.what()});
  } catch (const std::exception& e) {
    result = faulted_scan(result.ocr_retried,
                          quarantined_document{index, delivered.title, error_code::internal,
                                               e.what()});
  }
  if (result.fault && config_.strict) {
    // Mark the refusal in the trace so a chaos run's scan shows where
    // containment fired (never emitted under fail_fast scans: their traces
    // stay bit-identical to the historical ones).
    const obs::scoped_span quarantine_span(config_.trace, "quarantine", parent_span);
  }
  return result;
}

processed_document document_processor::process(const ocr::document& delivered,
                                               const ocr::document* pristine, std::size_t index,
                                               std::uint64_t parent_span) const {
  processed_document out;

  // The online path always scans strictly: a live append must not quietly
  // tolerate the damage the batch quarantine policies were built to catch.
  document_scan scanned;
  try {
    scan_into(scanned, delivered, pristine, /*strict=*/true, nullptr, parent_span);
  } catch (const error& e) {
    out.fault = quarantined_document{index, delivered.title, e.code(), e.what()};
  } catch (const std::exception& e) {
    out.fault = quarantined_document{index, delivered.title, error_code::internal, e.what()};
  }
  out.ocr_retried = scanned.ocr_retried;
  if (out.fault) {
    const obs::scoped_span quarantine_span(config_.trace, "quarantine", parent_span);
    return out;
  }

  // Stage II-2 on this document's records only. Mileage dedup across
  // documents is the live database's concern, not the processor's.
  const auto d_stats = parse::normalize_disengagements(scanned.events, config_.normalizer);
  parse::normalize_mileage(scanned.mileage);
  parse::normalize_accidents(scanned.accidents);
  out.records_normalized_away = d_stats.records_dropped;

  // Stage III through the shared phrase-automaton classifier.
  if (!scanned.events.empty()) {
    const obs::scoped_span label_span(config_.trace, "label", parent_span);
    std::vector<std::string_view> descriptions;
    descriptions.reserve(scanned.events.size());
    for (const auto& e : scanned.events) descriptions.push_back(e.description);
    const auto verdicts = classifier().classify_all(descriptions);
    for (std::size_t i = 0; i < verdicts.size(); ++i) {
      scanned.events[i].tag = verdicts[i].tag;
      scanned.events[i].category = verdicts[i].category;
      if (verdicts[i].tag == nlp::fault_tag::unknown) ++out.unknown_tags;
    }
  }

  out.disengagements = std::move(scanned.events);
  out.mileage = std::move(scanned.mileage);
  out.accidents = std::move(scanned.accidents);
  return out;
}

}  // namespace avtk::ingest
