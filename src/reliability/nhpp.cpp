#include "reliability/nhpp.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "stats/optimize.h"
#include "stats/special.h"
#include "util/errors.h"

namespace avtk::reliability {

namespace {

constexpr double k_penalty = 1e300;  // objective value for infeasible points

// Sufficient statistics of the joint likelihood across units.
struct pooled {
  std::size_t units = 0;
  double n = 0;           // total events
  double sum_exposure = 0;
  double sum_t = 0;       // sum of event positions
  double sum_log_t = 0;   // sum of log event positions
  double max_exposure = 0;
  std::vector<double> exposures;
};

pooled pool(std::span<const event_process> units) {
  pooled p;
  for (const auto& u : units) {
    if (!(u.exposure > 0)) continue;
    ++p.units;
    p.sum_exposure += u.exposure;
    p.max_exposure = std::max(p.max_exposure, u.exposure);
    p.exposures.push_back(u.exposure);
    for (const double t : u.events) {
      p.n += 1;
      p.sum_t += t;
      p.sum_log_t += std::log(t);
    }
  }
  return p;
}

double finite_or_penalty(double negative_log_likelihood) {
  return std::isfinite(negative_log_likelihood) ? negative_log_likelihood : k_penalty;
}

// l(beta, eta) = N ln beta + (beta-1) S_log - N beta ln eta - sum_i (T_i/eta)^beta,
// over x = (ln beta, ln(eta/T_max)) so the simplex walks O(1) coordinates.
nhpp_fit fit_power_law(const pooled& p, const hpp_fit& hpp) {
  nhpp_fit fit;
  if (p.n == 0) {
    // No events: the likelihood is maximized by Lambda -> 0 (scale -> inf);
    // report the HPP-equivalent likelihood and let AIC prefer the baseline.
    fit.log_likelihood = hpp.log_likelihood;
    fit.aic = 4.0 - 2.0 * fit.log_likelihood;
    return fit;
  }
  const double log_tmax = std::log(p.max_exposure);
  const auto objective = [&](const std::vector<double>& x) {
    const double beta = std::exp(x[0]);
    if (!(beta > 1e-6) || !(beta < 1e6)) return k_penalty;
    const double log_eta = x[1] + log_tmax;
    double ll = p.n * std::log(beta) + (beta - 1.0) * p.sum_log_t - p.n * beta * log_eta;
    for (const double exposure : p.exposures) {
      const double e = beta * (std::log(exposure) - log_eta);
      if (e > 700.0) return k_penalty;
      ll -= std::exp(e);
    }
    return finite_or_penalty(-ll);
  };
  // Start at the HPP-equivalent point (beta = 1, Lambda(T) = T / eta with
  // eta = 1/rate): the optimum can therefore never fall below the HPP
  // likelihood — the nested-model guarantee the CI gate asserts.
  const std::vector<double> start = {0.0, std::log(p.sum_exposure / p.n) - log_tmax};
  const auto opt = stats::nelder_mead_minimize(objective, start, 0.25, 1e-12, 4000);
  fit.shape = std::exp(opt.x[0]);
  fit.scale = std::exp(opt.x[1]) * p.max_exposure;
  fit.log_likelihood = -opt.value;
  fit.aic = 4.0 - 2.0 * fit.log_likelihood;
  fit.converged = opt.converged;
  return fit;
}

// l(alpha, gamma) = N alpha + gamma S_t - sum_i e^alpha (e^(gamma T_i) - 1)/gamma,
// over x = (alpha, gamma * T_max).
nhpp_fit fit_log_linear(const pooled& p, const hpp_fit& hpp) {
  nhpp_fit fit;
  if (p.n == 0) {
    fit.log_likelihood = hpp.log_likelihood;
    fit.aic = 4.0 - 2.0 * fit.log_likelihood;
    return fit;
  }
  const auto objective = [&](const std::vector<double>& x) {
    const double alpha = x[0];
    const double gamma_scaled = x[1];
    if (!(alpha > -700.0) || !(alpha < 700.0)) return k_penalty;
    double ll = p.n * alpha + (gamma_scaled / p.max_exposure) * p.sum_t;
    for (const double exposure : p.exposures) {
      const double s = exposure / p.max_exposure;  // in (0, 1]
      const double gs = gamma_scaled * s;
      if (gs > 700.0) return k_penalty;
      const double integral = std::fabs(gamma_scaled) < 1e-12
                                  ? exposure
                                  : p.max_exposure * std::expm1(gs) / gamma_scaled;
      ll -= std::exp(alpha) * integral;
    }
    return finite_or_penalty(-ll);
  };
  // Start at the HPP-equivalent point (gamma = 0, e^alpha = rate).
  const std::vector<double> start = {std::log(p.n / p.sum_exposure), 0.0};
  const auto opt = stats::nelder_mead_minimize(objective, start, 0.25, 1e-12, 4000);
  fit.alpha = opt.x[0];
  fit.gamma = opt.x[1] / p.max_exposure;
  fit.log_likelihood = -opt.value;
  fit.aic = 4.0 - 2.0 * fit.log_likelihood;
  fit.converged = opt.converged;
  return fit;
}

laplace_result laplace_test(std::span<const event_process> units) {
  // U = (sum_ij t_ij - (1/2) sum_i n_i T_i) / sqrt((1/12) sum_i n_i T_i^2):
  // under H0 (no trend) event positions are uniform on (0, T_i], so U is
  // asymptotically standard normal.
  double sum_t = 0;
  double half_sum = 0;
  double var_sum = 0;
  for (const auto& u : units) {
    if (!(u.exposure > 0)) continue;
    const auto n = static_cast<double>(u.events.size());
    for (const double t : u.events) sum_t += t;
    half_sum += n * u.exposure / 2.0;
    var_sum += n * u.exposure * u.exposure / 12.0;
  }
  laplace_result out;
  if (!(var_sum > 0)) return out;  // no events: no evidence either way
  out.statistic = (sum_t - half_sum) / std::sqrt(var_sum);
  out.p_value = 2.0 * (1.0 - stats::normal_cdf(std::fabs(out.statistic)));
  return out;
}

}  // namespace

std::string_view trend_analysis::preferred() const {
  std::string_view best = "hpp";
  double best_aic = hpp.aic;
  if (power_law.converged && power_law.aic < best_aic) {
    best = "power_law";
    best_aic = power_law.aic;
  }
  if (log_linear.converged && log_linear.aic < best_aic) {
    best = "log_linear";
  }
  return best;
}

trend_analysis fit_trend(std::span<const event_process> units) {
  const auto p = pool(units);
  if (p.units == 0) throw logic_error("fit_trend: no unit has positive exposure");

  trend_analysis out;
  out.units = p.units;
  out.events = static_cast<std::size_t>(p.n);
  out.exposure = p.sum_exposure;

  out.hpp.rate = p.n / p.sum_exposure;
  out.hpp.log_likelihood =
      p.n > 0 ? p.n * std::log(out.hpp.rate) - out.hpp.rate * p.sum_exposure : 0.0;
  out.hpp.aic = 2.0 - 2.0 * out.hpp.log_likelihood;

  out.power_law = fit_power_law(p, out.hpp);
  out.log_linear = fit_log_linear(p, out.hpp);
  out.laplace = laplace_test(units);
  return out;
}

double expected_events(const trend_analysis& analysis, std::string_view model,
                       double at_miles, double horizon_miles) {
  if (!(horizon_miles >= 0) || !(at_miles >= 0)) {
    throw logic_error("expected_events requires non-negative miles");
  }
  if (model == "hpp") return analysis.hpp.rate * horizon_miles;
  if (model == "power_law") {
    const auto& f = analysis.power_law;
    if (!(f.scale > 0)) return 0.0;
    return std::pow((at_miles + horizon_miles) / f.scale, f.shape) -
           std::pow(at_miles / f.scale, f.shape);
  }
  if (model == "log_linear") {
    const auto& f = analysis.log_linear;
    if (std::fabs(f.gamma) < 1e-300) return std::exp(f.alpha) * horizon_miles;
    return std::exp(f.alpha + f.gamma * at_miles) * std::expm1(f.gamma * horizon_miles) /
           f.gamma;
  }
  throw logic_error("expected_events: unknown model '" + std::string(model) + "'");
}

}  // namespace avtk::reliability
