#include "reliability/events.h"

#include <algorithm>
#include <map>
#include <tuple>
#include <utility>

namespace avtk::reliability {

namespace {

using dataset::manufacturer;
using dataset::vehicle_month;

// Appends one month's events to `process`, advancing its exposure clock.
// The cell's d events land at fractions (j+1)/(d+1) of the month's mileage
// span, so they stay strictly inside (start, end) and strictly ordered. A
// zero-mile month with events (possible when a report logs events against
// a vehicle that reported no miles that month) pins them to the current
// clock position; events at clock 0 have no observable exposure and are
// dropped when the process is finalized.
void append_month(event_process& process, const vehicle_month& cell) {
  const double start = process.exposure;
  const auto d = static_cast<std::size_t>(cell.disengagements);
  for (std::size_t j = 0; j < d; ++j) {
    const double frac = static_cast<double>(j + 1) / static_cast<double>(d + 1);
    process.events.push_back(start + cell.miles * frac);
  }
  process.exposure = start + cell.miles;
}

// Drops unobservable zero-clock events; returns false for a process with
// no exposure at all (nothing to estimate against).
bool finalize(event_process& process) {
  std::erase_if(process.events, [](double t) { return !(t > 0); });
  return process.exposure > 0;
}

maker_processes build_maker(manufacturer maker,
                            const std::vector<const vehicle_month*>& cells) {
  maker_processes out;
  out.maker = maker;
  out.fleet.unit_id = std::string(dataset::manufacturer_id(maker));

  // Per-VIN: cells arrive sorted by (vehicle, month), so one linear pass
  // builds each vehicle's cumulative-mileage clock.
  event_process current;
  bool open = false;
  const auto flush = [&] {
    if (open && finalize(current)) out.vehicles.push_back(std::move(current));
    current = event_process{};
    open = false;
  };
  for (const auto* cell : cells) {
    if (!open || cell->vehicle_id != current.unit_id) {
      flush();
      current.unit_id = cell->vehicle_id;
      open = true;
    }
    append_month(current, *cell);
  }
  flush();

  // Fleet: the same cells re-grouped by month onto one shared clock. The
  // month totals are accumulated first so the within-month spread uses the
  // whole fleet's mileage span for that month.
  std::map<std::int64_t, vehicle_month> months;
  for (const auto* cell : cells) {
    auto& m = months[cell->month.index()];
    m.maker = maker;
    m.month = cell->month;
    m.miles += cell->miles;
    m.disengagements += cell->disengagements;
  }
  for (const auto& [index, cell] : months) append_month(out.fleet, cell);
  finalize(out.fleet);
  return out;
}

}  // namespace

std::size_t maker_processes::vehicle_events() const {
  std::size_t n = 0;
  for (const auto& v : vehicles) n += v.count();
  return n;
}

std::vector<maker_processes> extract_processes(const dataset::database_view& db) {
  // vehicle_months() is keyed (maker, vehicle, month) and already carries
  // the attribution of vehicle-less / month-less events; its map order
  // makes the whole extraction deterministic.
  const auto cells = db.vehicle_months();
  std::map<manufacturer, std::vector<const vehicle_month*>> by_maker;
  for (const auto& cell : cells) by_maker[cell.maker].push_back(&cell);

  std::vector<maker_processes> out;
  for (const auto& [maker, maker_cells] : by_maker) {
    auto built = build_maker(maker, maker_cells);
    if (built.fleet.exposure > 0) out.push_back(std::move(built));
  }
  return out;
}

std::optional<maker_processes> extract_processes(const dataset::database_view& db,
                                                 dataset::manufacturer maker) {
  for (auto& p : extract_processes(db)) {
    if (p.maker == maker) return std::move(p);
  }
  return std::nullopt;
}

}  // namespace avtk::reliability
