#include "reliability/mcf.h"

#include <algorithm>
#include <utility>

#include "stats/bootstrap.h"
#include "util/errors.h"

namespace avtk::reliability {

namespace {

// Units with exposure >= t (an event at a unit's own censor point still
// counts that unit at risk). `exposures` sorted ascending.
std::size_t at_risk(const std::vector<double>& exposures, double t) {
  const auto first = std::lower_bound(exposures.begin(), exposures.end(), t);
  return static_cast<std::size_t>(exposures.end() - first);
}

// MCF step values at the (ascending) grid positions for one collection of
// units — the evaluation the bootstrap re-runs per resample. Every event
// belongs to a unit in the collection, so its at-risk count is >= 1.
std::vector<double> mcf_on_grid(const std::vector<const event_process*>& units,
                                const std::vector<double>& grid) {
  std::vector<double> events;
  std::vector<double> exposures;
  exposures.reserve(units.size());
  for (const auto* u : units) {
    exposures.push_back(u->exposure);
    events.insert(events.end(), u->events.begin(), u->events.end());
  }
  std::sort(events.begin(), events.end());
  std::sort(exposures.begin(), exposures.end());

  std::vector<double> out(grid.size());
  double cumulative = 0.0;
  std::size_t e = 0;
  for (std::size_t g = 0; g < grid.size(); ++g) {
    while (e < events.size() && events[e] <= grid[g]) {
      cumulative += 1.0 / static_cast<double>(at_risk(exposures, events[e]));
      ++e;
    }
    out[g] = cumulative;
  }
  return out;
}

// Index-uniform thinning that always keeps the last point. The stride is
// >= 1, so the kept indices are strictly increasing.
std::vector<std::size_t> thin_indices(std::size_t n, std::size_t max_points) {
  std::vector<std::size_t> out;
  if (max_points == 0 || n <= max_points) {
    out.resize(n);
    for (std::size_t i = 0; i < n; ++i) out[i] = i;
    return out;
  }
  out.reserve(max_points);
  for (std::size_t i = 0; i < max_points; ++i) {
    out.push_back(i * (n - 1) / (max_points - 1));
  }
  return out;
}

}  // namespace

mcf_estimate estimate_mcf(std::span<const event_process> units, const mcf_options& options) {
  std::vector<const event_process*> active;
  for (const auto& u : units) {
    if (u.exposure > 0) active.push_back(&u);
  }
  if (active.empty()) throw logic_error("estimate_mcf: no unit has positive exposure");

  mcf_estimate out;
  out.units = active.size();

  // The full curve: one step per distinct event position.
  std::vector<double> events;
  std::vector<double> exposures;
  exposures.reserve(active.size());
  for (const auto* u : active) {
    exposures.push_back(u->exposure);
    events.insert(events.end(), u->events.begin(), u->events.end());
  }
  out.total_events = events.size();
  std::sort(events.begin(), events.end());
  std::sort(exposures.begin(), exposures.end());

  std::vector<mcf_point> full;
  double mcf = 0.0;
  double variance = 0.0;
  for (std::size_t i = 0; i < events.size();) {
    std::size_t j = i;
    while (j < events.size() && events[j] == events[i]) ++j;
    const auto d = static_cast<double>(j - i);
    const auto n = at_risk(exposures, events[i]);
    mcf += d / static_cast<double>(n);
    variance += d / (static_cast<double>(n) * static_cast<double>(n));
    mcf_point p;
    p.miles = events[i];
    p.events = j - i;
    p.at_risk = n;
    p.mcf = mcf;
    p.variance = variance;
    full.push_back(p);
    i = j;
  }

  const auto kept = thin_indices(full.size(), options.max_points);
  out.points.reserve(kept.size());
  for (const auto i : kept) out.points.push_back(full[i]);

  if (!out.points.empty()) {
    std::vector<double> grid;
    grid.reserve(out.points.size());
    for (const auto& p : out.points) grid.push_back(p.miles);
    const auto bands = stats::bootstrap_curve_bands(
        active.size(),
        [&](std::span<const std::size_t> indices) {
          std::vector<const event_process*> resampled;
          resampled.reserve(indices.size());
          for (const auto i : indices) resampled.push_back(active[i]);
          return mcf_on_grid(resampled, grid);
        },
        options.seed, options.replicates, options.confidence);
    for (std::size_t i = 0; i < out.points.size(); ++i) {
      out.points[i].lower = bands.lower[i];
      out.points[i].upper = bands.upper[i];
    }
  }
  return out;
}

double mcf_at(const mcf_estimate& estimate, double miles) {
  const auto& points = estimate.points;
  auto it = std::upper_bound(points.begin(), points.end(), miles,
                             [](double t, const mcf_point& p) { return t < p.miles; });
  if (it == points.begin()) return 0.0;
  return std::prev(it)->mcf;
}

}  // namespace avtk::reliability
