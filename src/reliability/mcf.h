// avtk/reliability/mcf.h
//
// Nonparametric mean-cumulative-function (MCF) estimation for recurrent
// events under right censoring — the fleet-reliability view of Hong et al.
// (arXiv:2102.01740, §3): at mileage t, MCF(t) is the expected cumulative
// number of disengagements a vehicle has accumulated by its t-th mile.
//
// Estimator (Nelson's MCF / Nelson–Aalen increments): at each event
// position t with d events and n units still under observation,
//   MCF(t) = sum_{s <= t} d_s / n_s,
// with the Poisson-style variance  Var(t) = sum_{s <= t} d_s / n_s^2.
// Confidence bands come from the unit (vehicle) bootstrap — resample whole
// vehicles with replacement and re-evaluate the step function on the
// original grid — via stats::bootstrap_curve_bands with an explicit seed,
// so the bands are deterministic across runs and parallelism.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "reliability/events.h"

namespace avtk::reliability {

/// One step of the estimated MCF.
struct mcf_point {
  double miles = 0.0;       ///< event position on the unit's mileage clock
  std::size_t events = 0;   ///< events at exactly this position
  std::size_t at_risk = 0;  ///< units with exposure >= miles
  double mcf = 0.0;         ///< estimate just after this position
  double variance = 0.0;    ///< Nelson–Aalen-style variance of the estimate
  double lower = 0.0;       ///< pointwise bootstrap percentile band
  double upper = 0.0;
};

struct mcf_options {
  /// Seeds the vehicle-bootstrap resampling stream for the bands. The
  /// same seed (and inputs) always reproduces the same bands bit-for-bit.
  std::uint64_t seed = 42;
  int replicates = 200;      ///< bootstrap replicates (>= 100)
  double confidence = 0.95;  ///< band confidence level, in (0, 1)
  /// Cap on emitted curve points. When the process has more distinct event
  /// positions, the curve is thinned to an index-uniform subset that always
  /// keeps the final point; each kept point is still the exact estimate at
  /// that position. 0 keeps every point.
  std::size_t max_points = 0;
};

struct mcf_estimate {
  std::vector<mcf_point> points;  ///< ascending in miles, MCF non-decreasing
  std::size_t units = 0;          ///< processes with positive exposure
  std::size_t total_events = 0;   ///< events across all units
};

/// Estimates the MCF over `units` (per-VIN processes from
/// extract_processes). Units with exposure <= 0 are ignored; throws
/// avtk::logic_error when no unit has positive exposure. A fleet with
/// events but a single unit still gets bands (they degenerate toward the
/// point estimate, as they should).
mcf_estimate estimate_mcf(std::span<const event_process> units, const mcf_options& options = {});

/// Step-function evaluation of an estimated curve: MCF at `miles` (0
/// before the first point, flat after the last).
double mcf_at(const mcf_estimate& estimate, double miles);

}  // namespace avtk::reliability
