// avtk/reliability/nhpp.h
//
// Parametric trend models for the fleet event process: nonhomogeneous
// Poisson processes with the two intensity families Hong et al.
// (arXiv:2102.01740, §4) fit to exactly this data, compared against the
// homogeneous-Poisson (no-trend) baseline by AIC and probed by the Laplace
// trend test. The clock is cumulative miles; intensities are events/mile.
//
//   power-law (Crow/AMSAA):  lambda(t) = (shape/scale) * (t/scale)^(shape-1)
//                            Lambda(T) = (T/scale)^shape
//       shape < 1: reliability growth (intensity falling with exposure —
//       the disengagement-rate improvement the paper's Fig. 5 shows);
//       shape = 1 degenerates to the HPP.
//   log-linear (Cox-Lewis):  lambda(t) = exp(alpha + gamma t)
//                            Lambda(T) = exp(alpha) (exp(gamma T) - 1)/gamma
//
// Fits are exact maximum likelihood over all units jointly (each unit i
// contributes sum_j log lambda(t_ij) - Lambda(T_i)), maximized with
// stats::nelder_mead_minimize in a rescaled parameterization (log-shape /
// log-scale; gamma in units of 1/max-exposure) so the simplex operates on
// O(1) coordinates whatever the mileage scale.
#pragma once

#include <cstddef>
#include <span>
#include <string_view>

#include "reliability/events.h"

namespace avtk::reliability {

/// Homogeneous-Poisson baseline: the constant-rate MLE.
struct hpp_fit {
  double rate = 0.0;            ///< events per mile
  double log_likelihood = 0.0;
  double aic = 0.0;             ///< 2k - 2l with k = 1
};

/// One fitted NHPP intensity family.
struct nhpp_fit {
  // Power-law parameters (meaningful for the power-law family).
  double shape = 1.0;
  double scale = 1.0;
  // Log-linear parameters (meaningful for the log-linear family).
  double alpha = 0.0;
  double gamma = 0.0;
  double log_likelihood = 0.0;
  double aic = 0.0;             ///< 2k - 2l with k = 2
  bool converged = false;
};

/// Laplace trend test over all units: positive statistics mean the event
/// intensity grows with mileage (deterioration), negative means
/// improvement; under no trend the statistic is standard normal.
struct laplace_result {
  double statistic = 0.0;
  double p_value = 1.0;  ///< two-sided
};

/// The full trend analysis of one fleet.
struct trend_analysis {
  std::size_t units = 0;
  std::size_t events = 0;
  double exposure = 0.0;  ///< total observed miles across units

  hpp_fit hpp;
  nhpp_fit power_law;
  nhpp_fit log_linear;
  laplace_result laplace;

  /// Minimum-AIC model: "hpp", "power_law" or "log_linear".
  std::string_view preferred() const;
};

/// Fits all models to `units` (for fleet trends, pass the single fleet
/// process). Requires at least one unit with positive exposure (throws
/// avtk::logic_error otherwise); with zero events the NHPP families are
/// degenerate and the analysis reports the HPP with rate 0 as preferred.
trend_analysis fit_trend(std::span<const event_process> units);

/// Expected events over the next `horizon_miles` for a unit that has
/// already accumulated `at_miles`: Lambda(at + horizon) - Lambda(at) under
/// the given fitted model ("hpp", "power_law", "log_linear"; anything else
/// throws avtk::logic_error). Requires horizon_miles >= 0.
double expected_events(const trend_analysis& analysis, std::string_view model,
                       double at_miles, double horizon_miles);

}  // namespace avtk::reliability
