// avtk/reliability/events.h
//
// Recurrent-events view of the failure database: the same disengagement
// data the paper tabulates once per release is fundamentally a repairable-
// systems event process (Hong et al., arXiv:2102.01740). This header turns
// `dataset::failure_database` into per-manufacturer event processes on a
// mileage clock — a fleet-level process (cumulative fleet miles) for trend
// models, and per-VIN processes (each vehicle's own cumulative miles) for
// the mean-cumulative-function estimator.
//
// The extraction rides on `failure_database::vehicle_months()`, so events
// without a resolvable vehicle or month inherit its documented attribution
// (equal shares across the month's active vehicles, miles-proportional as
// the fallback) instead of inventing a second attribution scheme. Within a
// month, a cell's d events are spread deterministically at fractions
// (j+1)/(d+1) of the month's mileage span — no randomness, so repeated
// extractions (and therefore cached serve payloads) are byte-stable.
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

#include "dataset/view.h"
#include "dataset/manufacturers.h"

namespace avtk::reliability {

/// One observed event process: a unit followed from 0 to `exposure`
/// cumulative miles, with events at strictly positive mile positions.
struct event_process {
  std::string unit_id;         ///< vehicle id, or the maker id for fleets
  double exposure = 0.0;       ///< total observed miles (the censor point)
  std::vector<double> events;  ///< event positions in (0, exposure], ascending

  std::size_t count() const { return events.size(); }
};

/// Every process extracted for one manufacturer.
struct maker_processes {
  dataset::manufacturer maker = dataset::manufacturer::waymo;
  /// The fleet as a single superposed process on the cumulative-fleet-miles
  /// clock — the input to the NHPP trend fits and extrapolation.
  event_process fleet;
  /// Per-VIN processes (one per vehicle with positive mileage), each on its
  /// own cumulative-miles clock — the input to the MCF estimator. Vehicles
  /// whose ids the reports redact are merged by `vehicle_months()` into the
  /// empty-id vehicle and appear here as one unit.
  std::vector<event_process> vehicles;

  std::size_t vehicle_events() const;
};

/// Extracts processes for every manufacturer present in the disengagement
/// data (enum order, like `manufacturers_present()`); makers with no
/// positive mileage are skipped — a process needs an exposure clock.
std::vector<maker_processes> extract_processes(const dataset::database_view& db);

/// Single-maker extraction; nullopt when the maker has no positive mileage.
std::optional<maker_processes> extract_processes(const dataset::database_view& db,
                                                 dataset::manufacturer maker);

}  // namespace avtk::reliability
