// avtk/dataset/phrase_bank.h
//
// Free-text cause descriptions for each fault tag — the raw material the
// corpus generator writes into disengagement logs and the NLP classifier
// must map back to tags. Templates are phrased the way real DMV logs read
// (Table II of the paper), and every template carries enough keyword signal
// for the builtin failure dictionary to recover its tag.
#pragma once

#include <string>
#include <vector>

#include "nlp/ontology.h"
#include "util/rng.h"

namespace avtk::dataset {

/// Cause-description templates for `tag`. Non-empty for every tag except
/// `unknown` (vague texts come from `vague_descriptions()`).
const std::vector<std::string>& descriptions_for(nlp::fault_tag tag);

/// Deliberately uninformative descriptions (Tesla-style) that the
/// classifier must map to Unknown-T.
const std::vector<std::string>& vague_descriptions();

/// Draws one description for `tag`, with the narrative shell ("driver
/// safely disengaged and resumed manual control") appended with
/// probability `shell_probability`.
std::string sample_description(nlp::fault_tag tag, rng& gen, double shell_probability = 0.5);

/// Draws a vague description.
std::string sample_vague_description(rng& gen);

/// The four cause groups the generator samples from (Table IV's columns).
enum class cause_group { perception, planner_controller, system, unknown };

/// Within-group tag weights used by the generator: how a group's
/// disengagements spread over its tags. `watchdog_heavy` selects the
/// Volkswagen-style System profile dominated by watchdog errors.
std::vector<std::pair<nlp::fault_tag, double>> tag_weights(cause_group group,
                                                           bool watchdog_heavy = false);

/// Draws a fault tag for a cause group.
nlp::fault_tag sample_tag(cause_group group, rng& gen, bool watchdog_heavy = false);

}  // namespace avtk::dataset
