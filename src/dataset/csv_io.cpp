#include "dataset/csv_io.h"

#include <cstdio>

#include "util/csv.h"
#include "util/errors.h"
#include "util/strings.h"

namespace avtk::dataset {

namespace {

std::string opt_date(const std::optional<date>& d) { return d ? d->to_string() : ""; }
std::string opt_month(const std::optional<year_month>& m) { return m ? m->to_string() : ""; }

std::string fmt(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

std::optional<date> parse_opt_date(const std::string& s) {
  if (str::trim(s).empty()) return std::nullopt;
  const auto d = dates::parse_date(s);
  if (!d) throw parse_error("bad date in CSV: " + s);
  return d;
}

std::optional<year_month> parse_opt_month(const std::string& s) {
  if (str::trim(s).empty()) return std::nullopt;
  const auto m = dates::parse_year_month(s);
  if (!m) throw parse_error("bad month in CSV: " + s);
  return m;
}

std::optional<double> parse_opt_double(const std::string& s) {
  if (str::trim(s).empty()) return std::nullopt;
  const auto v = str::parse_double(s);
  if (!v) throw parse_error("bad number in CSV: " + s);
  return v;
}

manufacturer parse_maker(const std::string& s) {
  const auto m = manufacturer_from_string(s);
  if (!m) throw parse_error("unknown manufacturer in CSV: " + s);
  return *m;
}

}  // namespace

database_csv export_csv(const failure_database& db) {
  database_csv out;

  {
    std::vector<csv::row> rows;
    rows.push_back({"manufacturer", "report_year", "date", "month", "vehicle", "modality",
                    "road", "weather", "reaction_time_s", "tag", "category", "description"});
    for (const auto& d : db.disengagements()) {
      rows.push_back({std::string(manufacturer_id(d.maker)), std::to_string(d.report_year),
                      opt_date(d.event_date), opt_month(d.event_month), d.vehicle_id,
                      std::string(modality_name(d.mode)), std::string(road_type_name(d.road)),
                      std::string(weather_name(d.conditions)),
                      d.reaction_time_s ? fmt(*d.reaction_time_s) : "",
                      std::string(nlp::tag_id(d.tag)),
                      std::string(nlp::category_name(d.category)), d.description});
    }
    out.disengagements = csv::format(rows);
  }
  {
    std::vector<csv::row> rows;
    rows.push_back({"manufacturer", "report_year", "vehicle", "month", "miles"});
    for (const auto& m : db.mileage()) {
      rows.push_back({std::string(manufacturer_id(m.maker)), std::to_string(m.report_year),
                      m.vehicle_id, m.month.to_string(), fmt(m.miles)});
    }
    out.mileage = csv::format(rows);
  }
  {
    std::vector<csv::row> rows;
    rows.push_back({"manufacturer", "report_year", "date", "vehicle", "location",
                    "av_speed_mph", "other_speed_mph", "autonomous_mode", "rear_end",
                    "near_intersection", "injuries", "description"});
    for (const auto& a : db.accidents()) {
      rows.push_back({std::string(manufacturer_id(a.maker)), std::to_string(a.report_year),
                      opt_date(a.event_date), a.vehicle_id, a.location,
                      a.av_speed_mph ? fmt(*a.av_speed_mph) : "",
                      a.other_speed_mph ? fmt(*a.other_speed_mph) : "",
                      a.av_in_autonomous_mode ? "yes" : "no", a.rear_end ? "yes" : "no",
                      a.near_intersection ? "yes" : "no", a.injuries ? "yes" : "no",
                      a.description});
    }
    out.accidents = csv::format(rows);
  }
  return out;
}

failure_database import_csv(const database_csv& csv_in) {
  failure_database db;

  {
    const auto t = csv::table::from_text(csv_in.disengagements);
    for (std::size_t i = 0; i < t.row_count(); ++i) {
      disengagement_record d;
      d.maker = parse_maker(t.at(i, "manufacturer"));
      d.report_year = static_cast<int>(
          str::parse_int(t.at(i, "report_year")).value_or(0));
      d.event_date = parse_opt_date(t.at(i, "date"));
      d.event_month = parse_opt_month(t.at(i, "month"));
      d.vehicle_id = t.at(i, "vehicle");
      d.mode = modality_from_string(t.at(i, "modality")).value_or(modality::unknown);
      d.road = road_type_from_string(t.at(i, "road")).value_or(road_type::unknown);
      d.conditions = weather_from_string(t.at(i, "weather")).value_or(weather::unknown);
      d.reaction_time_s = parse_opt_double(t.at(i, "reaction_time_s"));
      const auto tag = nlp::tag_from_string(t.at(i, "tag"));
      if (!tag) throw parse_error("unknown tag in CSV: " + t.at(i, "tag"));
      d.tag = *tag;
      const auto category = nlp::category_from_string(t.at(i, "category"));
      if (!category) throw parse_error("unknown category in CSV: " + t.at(i, "category"));
      d.category = *category;
      d.description = t.at(i, "description");
      db.add_disengagement(std::move(d));
    }
  }
  {
    const auto t = csv::table::from_text(csv_in.mileage);
    for (std::size_t i = 0; i < t.row_count(); ++i) {
      mileage_record m;
      m.maker = parse_maker(t.at(i, "manufacturer"));
      m.report_year = static_cast<int>(str::parse_int(t.at(i, "report_year")).value_or(0));
      m.vehicle_id = t.at(i, "vehicle");
      const auto month = parse_opt_month(t.at(i, "month"));
      if (!month) throw parse_error("mileage row missing month");
      m.month = *month;
      const auto miles = parse_opt_double(t.at(i, "miles"));
      if (!miles) throw parse_error("mileage row missing miles");
      m.miles = *miles;
      db.add_mileage(std::move(m));
    }
  }
  {
    const auto t = csv::table::from_text(csv_in.accidents);
    for (std::size_t i = 0; i < t.row_count(); ++i) {
      accident_record a;
      a.maker = parse_maker(t.at(i, "manufacturer"));
      a.report_year = static_cast<int>(str::parse_int(t.at(i, "report_year")).value_or(0));
      a.event_date = parse_opt_date(t.at(i, "date"));
      a.vehicle_id = t.at(i, "vehicle");
      a.location = t.at(i, "location");
      a.av_speed_mph = parse_opt_double(t.at(i, "av_speed_mph"));
      a.other_speed_mph = parse_opt_double(t.at(i, "other_speed_mph"));
      a.av_in_autonomous_mode = str::iequals(t.at(i, "autonomous_mode"), "yes");
      a.rear_end = str::iequals(t.at(i, "rear_end"), "yes");
      a.near_intersection = str::iequals(t.at(i, "near_intersection"), "yes");
      a.injuries = str::iequals(t.at(i, "injuries"), "yes");
      a.description = t.at(i, "description");
      db.add_accident(std::move(a));
    }
  }
  return db;
}

}  // namespace avtk::dataset
