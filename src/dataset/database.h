// avtk/dataset/database.h
//
// The consolidated AV failure database (step 4 of Fig. 1): normalized
// disengagements, mileage and accidents merged into one queryable store.
// All Stage IV analyses read from this type.
#pragma once

#include <functional>
#include <map>
#include <optional>
#include <vector>

#include "dataset/records.h"

namespace avtk::dataset {

/// Monthly aggregate for one (manufacturer, vehicle) pair.
struct vehicle_month {
  manufacturer maker = manufacturer::waymo;
  std::string vehicle_id;
  year_month month;
  double miles = 0.0;
  long long disengagements = 0;
};

class failure_database {
 public:
  failure_database() = default;

  void add_disengagement(disengagement_record rec);
  void add_mileage(mileage_record rec);
  void add_accident(accident_record rec);

  const std::vector<disengagement_record>& disengagements() const { return disengagements_; }
  const std::vector<mileage_record>& mileage() const { return mileage_; }
  const std::vector<accident_record>& accidents() const { return accidents_; }

  /// Disengagements matching a predicate.
  std::vector<const disengagement_record*> query_disengagements(
      const std::function<bool(const disengagement_record&)>& pred) const;

  /// All disengagements / accidents of one manufacturer.
  std::vector<const disengagement_record*> disengagements_of(manufacturer maker) const;
  std::vector<const accident_record*> accidents_of(manufacturer maker) const;

  /// Manufacturers present in the disengagement data.
  std::vector<manufacturer> manufacturers_present() const;

  /// Total autonomous miles (optionally for one manufacturer).
  double total_miles() const;
  double total_miles(manufacturer maker) const;

  long long total_disengagements() const;
  long long total_disengagements(manufacturer maker) const;
  long long total_accidents() const;
  long long total_accidents(manufacturer maker) const;

  /// Joins mileage and disengagements into per-(vehicle, month) aggregates.
  /// Disengagements without a resolvable month or vehicle are attributed
  /// pro-rata at the manufacturer level (the paper's monthly aggregation
  /// faces the same redaction problem); specifically, they are assigned to
  /// the vehicle-months of that manufacturer in proportion to miles.
  std::vector<vehicle_month> vehicle_months() const;

  /// Per-vehicle total miles and disengagements (for per-car DPM).
  struct vehicle_total {
    manufacturer maker;
    std::string vehicle_id;
    double miles = 0;
    long long disengagements = 0;
    double dpm() const { return miles > 0 ? static_cast<double>(disengagements) / miles : 0.0; }
  };
  std::vector<vehicle_total> vehicle_totals() const;

  /// Reaction-time samples (seconds) for one manufacturer / all.
  std::vector<double> reaction_times(std::optional<manufacturer> maker = std::nullopt) const;

 private:
  std::vector<disengagement_record> disengagements_;
  std::vector<mileage_record> mileage_;
  std::vector<accident_record> accidents_;
};

}  // namespace avtk::dataset
