// avtk/dataset/database.h
//
// The consolidated AV failure database (step 4 of Fig. 1): normalized
// disengagements, mileage and accidents merged into one queryable store.
// All Stage IV analyses read from this type.
//
// Storage is copy-on-write per domain: each record array lives behind a
// shared_ptr, so copying a database is three refcount bumps plus the
// version vector, and a mutation clones only the domain it touches (the
// other two stay structurally shared with every copy). This is what makes
// serve's snapshot-isolated store (serve/store.h) cheap: publishing a new
// epoch after an ingest shares the untouched domains with every older
// epoch instead of deep-copying them. Readers of a shared database are
// race-free by construction (the arrays they see are immutable); mutation
// is single-owner as ever — writers serialize externally.
#pragma once

#include <compare>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <vector>

#include "dataset/records.h"

namespace avtk::dataset {

/// Monthly aggregate for one (manufacturer, vehicle) pair.
struct vehicle_month {
  manufacturer maker = manufacturer::waymo;
  std::string vehicle_id;
  year_month month;
  double miles = 0.0;
  long long disengagements = 0;
};

/// Per-domain monotonic version counters, bumped on every ingest. Consumers
/// that cache derived results (avtk::serve) key them on the versions of the
/// domains a computation actually reads, so appending an accident does not
/// invalidate results derived purely from disengagements.
struct database_version {
  std::uint64_t disengagements = 0;
  std::uint64_t mileage = 0;
  std::uint64_t accidents = 0;

  auto operator<=>(const database_version&) const = default;

  /// "d<N>.m<N>.a<N>" — stable textual form for cache keys and logs.
  std::string to_string() const;
};

class failure_database {
 public:
  failure_database() = default;

  void add_disengagement(disengagement_record rec);
  void add_mileage(mileage_record rec);
  void add_accident(accident_record rec);

  /// Appends carrying an explicit *global record id*. Every record gets a
  /// stable id at append time (the no-id overloads default it to the
  /// record's position, so in a single database id == index); a sharded
  /// store (serve/store.h) passes ids allocated from store-wide counters
  /// instead, which is what lets per-shard selections be concatenated back
  /// into original corpus order. Ids ride their own copy-on-write arrays,
  /// parallel to the record arrays.
  void add_disengagement(disengagement_record rec, std::uint64_t id);
  void add_mileage(mileage_record rec, std::uint64_t id);
  void add_accident(accident_record rec, std::uint64_t id);

  /// Global record ids, parallel to the corresponding record array.
  const std::vector<std::uint64_t>& disengagement_ids() const { return *disengagement_ids_; }
  const std::vector<std::uint64_t>& mileage_ids() const { return *mileage_ids_; }
  const std::vector<std::uint64_t>& accident_ids() const { return *accident_ids_; }

  /// Stage III writes its verdicts back in place: re-tags the
  /// disengagement at `index`. Bumps the disengagement version exactly
  /// like an add, so cached query results keyed on the version are
  /// invalidated. (The alternative — rebuilding the whole database just
  /// to change two enum fields per record — deep-copies every string and
  /// dominated the label stage's wall-clock.)
  void relabel_disengagement(std::size_t index, nlp::fault_tag tag,
                             nlp::failure_category category);

  /// Current per-domain version counters. Each add_* bumps exactly one
  /// domain by one; a default-constructed database is at {0, 0, 0}.
  const database_version& version() const { return version_; }

  /// Overwrites the version vector. A database partitioned by replaying
  /// add_* calls loses the source's relabel bumps; the sharded store
  /// (serve/store.h) uses this to conserve the seed's version components
  /// across its shards, so the composite sum — and every cache key and
  /// response version derived from it — stays byte-identical to the
  /// single-store oracle.
  void set_version(const database_version& v) { version_ = v; }

  /// Domain accessors return the shared array itself, so two databases
  /// that structurally share a domain return the *same* reference — tests
  /// (and the snapshot store's sharing contract) compare addresses.
  const std::vector<disengagement_record>& disengagements() const { return *disengagements_; }
  const std::vector<mileage_record>& mileage() const { return *mileage_; }
  const std::vector<accident_record>& accidents() const { return *accidents_; }

  /// Disengagements matching a predicate.
  std::vector<const disengagement_record*> query_disengagements(
      const std::function<bool(const disengagement_record&)>& pred) const;

  /// All disengagements / accidents of one manufacturer.
  std::vector<const disengagement_record*> disengagements_of(manufacturer maker) const;
  std::vector<const accident_record*> accidents_of(manufacturer maker) const;

  /// Manufacturers present in the disengagement data.
  std::vector<manufacturer> manufacturers_present() const;

  /// Total autonomous miles (optionally for one manufacturer).
  double total_miles() const;
  double total_miles(manufacturer maker) const;

  long long total_disengagements() const;
  long long total_disengagements(manufacturer maker) const;
  long long total_accidents() const;
  long long total_accidents(manufacturer maker) const;

  /// Joins mileage and disengagements into per-(vehicle, month) aggregates.
  /// Disengagements without a resolvable month or vehicle are attributed
  /// pro-rata at the manufacturer level (the paper's monthly aggregation
  /// faces the same redaction problem); specifically, they are assigned to
  /// the vehicle-months of that manufacturer in proportion to miles.
  std::vector<vehicle_month> vehicle_months() const;

  /// Per-vehicle total miles and disengagements (for per-car DPM).
  struct vehicle_total {
    manufacturer maker;
    std::string vehicle_id;
    double miles = 0;
    long long disengagements = 0;
    double dpm() const { return miles > 0 ? static_cast<double>(disengagements) / miles : 0.0; }
  };
  std::vector<vehicle_total> vehicle_totals() const;

  /// Reaction-time samples (seconds) for one manufacturer / all.
  std::vector<double> reaction_times(std::optional<manufacturer> maker = std::nullopt) const;

  /// Structurally adopt one domain from `other`: the array is shared (a
  /// refcount bump, no element copies) and the domain's version component
  /// is taken along, so cache keys derived from the shared domain match.
  /// serve's naive filter path uses these for domains a query leaves
  /// unrestricted, instead of re-adding records one by one.
  void share_disengagements_from(const failure_database& other);
  void share_mileage_from(const failure_database& other);
  void share_accidents_from(const failure_database& other);

 private:
  /// Clones `arr` iff it is shared (copy-on-write), returning a mutable
  /// reference to the uniquely owned array.
  template <typename T>
  static std::vector<T>& owned(std::shared_ptr<std::vector<T>>& arr);

  std::shared_ptr<std::vector<disengagement_record>> disengagements_ =
      std::make_shared<std::vector<disengagement_record>>();
  std::shared_ptr<std::vector<mileage_record>> mileage_ =
      std::make_shared<std::vector<mileage_record>>();
  std::shared_ptr<std::vector<accident_record>> accidents_ =
      std::make_shared<std::vector<accident_record>>();
  // Global record ids, one array per domain, same copy-on-write discipline
  // as the record arrays they parallel (shared on copy, cloned on write).
  std::shared_ptr<std::vector<std::uint64_t>> disengagement_ids_ =
      std::make_shared<std::vector<std::uint64_t>>();
  std::shared_ptr<std::vector<std::uint64_t>> mileage_ids_ =
      std::make_shared<std::vector<std::uint64_t>>();
  std::shared_ptr<std::vector<std::uint64_t>> accident_ids_ =
      std::make_shared<std::vector<std::uint64_t>>();
  database_version version_;
};

}  // namespace avtk::dataset
