#include "dataset/phrase_bank.h"

#include "util/errors.h"

namespace avtk::dataset {

namespace {

using nlp::fault_tag;

const std::vector<std::string>& shells() {
  static const std::vector<std::string> texts = {
      "Driver safely disengaged and resumed manual control.",
      "Test driver took immediate manual control of the vehicle.",
      "Safety driver disengaged autonomous mode as a precaution.",
      "Driver assumed manual control without incident.",
  };
  return texts;
}

}  // namespace

const std::vector<std::string>& descriptions_for(nlp::fault_tag tag) {
  static const std::vector<std::string> empty;

  static const std::vector<std::string> environment = {
      "Disengage for a recklessly behaving road user.",
      "Undetected construction zone forced a takeover.",
      "Emergency vehicle approaching with siren; disengage required.",
      "Heavy rain degraded visibility of the roadway.",
      "Sun glare on the roadway during late afternoon operation.",
      "Road debris in the travel lane.",
      "Erratic pedestrian stepped off the curb unexpectedly.",
      "Jaywalking pedestrian crossed mid-block.",
      "Cyclist swerved into the vehicle path.",
      "Lane closure with cones not present on prior maps.",
      "Accident ahead in adjacent lane created unusual traffic flow.",
  };
  static const std::vector<std::string> computer_system = {
      "Processor overload on the compute platform.",
      "High CPU load caused delayed perception output.",
      "Memory exhaustion on the primary compute unit.",
      "GPU fault detected during inference.",
      "Compute unit failure; fallback engaged.",
      "System resource exhaustion led to a degraded state.",
      "Overheating compute enclosure triggered throttling.",
      "Hardware fault reported by the platform monitor.",
  };
  static const std::vector<std::string> recognition = {
      "The AV didn't see the lead vehicle.",
      "Perception system failed to detect the traffic light state.",
      "Incorrect detection of lane marking on faded pavement.",
      "Failed to classify an object on the road shoulder.",
      "Recognition system failed to recognize a stop sign in time.",
      "Misdetected obstacle in the adjacent lane.",
      "Missed detection of a merging vehicle.",
      "False obstacle reported by the perception system.",
      "Object detection confidence dropped below threshold.",
      "Failed to detect a pedestrian at the crosswalk in time.",
  };
  static const std::vector<std::string> planner = {
      "Planner failed to anticipate the other driver's behavior.",
      "Improper motion plan through the intersection.",
      "Trajectory planning error during the lane change.",
      "Motion planning produced an infeasible path around the obstruction.",
      "Unwanted maneuver planned in heavy traffic.",
      "Path planning selected an uncomfortable maneuver.",
      "Planning error left insufficient gap to the lead vehicle.",
  };
  static const std::vector<std::string> sensor = {
      "Sensor failed to localize in time.",
      "Localization failure in the tunnel section.",
      "LIDAR dropout during operation.",
      "RADAR malfunction reported by the sensor monitor.",
      "GPS signal lost under the overpass.",
      "Camera blackout for several frames.",
      "Sensor data corruption detected on the primary channel.",
      "Calibration drift on the forward sensor suite.",
      "Sensor reading invalid; redundant channel disagreed.",
  };
  static const std::vector<std::string> network = {
      "Data rate too high to be handled by the network.",
      "Network latency spike between perception and planning modules.",
      "CAN bus overload dropped actuation messages.",
      "Communication timeout between compute nodes.",
      "Network failure on the internal bus.",
      "Message loss on bus during high traffic.",
      "Bandwidth exceeded on the sensor data link.",
  };
  static const std::vector<std::string> design_bug = {
      "AV was not designed to handle an unforeseen situation.",
      "Unexpected scenario outside the operational design domain.",
      "Design limitation encountered at the unprotected left turn.",
      "Unhandled corner case in the merge logic.",
      "Scenario beyond system capability: oncoming vehicle in shared lane.",
      "Unforeseen situation involving a double-parked truck.",
  };
  static const std::vector<std::string> software = {
      "Software module froze.",
      "Software crash in the planning process.",
      "Software hang; module restart required.",
      "Software bug produced invalid output.",
      "Process crashed and restarted automatically.",
      "Application error in the vehicle interface.",
      "Software fault in the map-matching component.",
      "Software exception in the perception pipeline.",
  };
  static const std::vector<std::string> controller_system = {
      "AV controller did not respond to commands.",
      "Controller unresponsive during the lane keep maneuver.",
      "Steering command ignored by the actuation layer.",
      "Brake command ignored; driver intervened.",
      "Throttle command ignored by the drive-by-wire unit.",
      "Actuation fault on the steering interface.",
  };
  static const std::vector<std::string> controller_ml = {
      "Controller made a wrong decision at the intersection.",
      "Incorrect decision by the AV controller in merging traffic.",
      "Poor decision in a complex traffic scenario.",
      "Wrong action chosen when the light turned yellow.",
      "Untimely decision while yielding to cross traffic.",
      "Controller decision error during the unprotected turn.",
  };
  static const std::vector<std::string> hang_crash = {
      "Takeover-Request - watchdog error.",
      "Watchdog timer expired on the control computer.",
      "Watchdog timeout triggered a takeover request.",
      "Watchdog reset of the autonomous driving computer.",
  };
  static const std::vector<std::string> behavior_prediction = {
      "Incorrect behavior prediction for the adjacent vehicle.",
      "Failed to predict behavior of the merging truck.",
      "Behavior prediction error for cross traffic.",
      "Mispredicted vehicle cutting into the lane.",
      "Incorrect prediction of a vehicle running the red light.",
  };

  switch (tag) {
    case fault_tag::environment: return environment;
    case fault_tag::computer_system: return computer_system;
    case fault_tag::recognition_system: return recognition;
    case fault_tag::planner: return planner;
    case fault_tag::sensor: return sensor;
    case fault_tag::network: return network;
    case fault_tag::design_bug: return design_bug;
    case fault_tag::software: return software;
    case fault_tag::av_controller_system: return controller_system;
    case fault_tag::av_controller_ml: return controller_ml;
    case fault_tag::hang_crash: return hang_crash;
    case fault_tag::incorrect_behavior_prediction: return behavior_prediction;
    case fault_tag::unknown: return empty;
  }
  throw logic_error("unreachable fault_tag");
}

const std::vector<std::string>& vague_descriptions() {
  // Must contain no failure-dictionary keywords: the classifier should
  // yield Unknown-T on every one of these.
  static const std::vector<std::string> texts = {
      "Disengagement reported.",
      "Event logged during testing.",
      "Takeover occurred; no further details provided.",
      "Disengaged during normal operation.",
      "No additional information available.",
      "Event recorded per reporting requirement.",
  };
  return texts;
}

std::string sample_description(nlp::fault_tag tag, rng& gen, double shell_probability) {
  const auto& options = descriptions_for(tag);
  if (options.empty()) return sample_vague_description(gen);
  std::string text = gen.pick(options);
  if (shell_probability > 0 && gen.bernoulli(shell_probability)) {
    text += ' ';
    text += gen.pick(shells());
  }
  return text;
}

std::string sample_vague_description(rng& gen) { return gen.pick(vague_descriptions()); }

std::vector<std::pair<nlp::fault_tag, double>> tag_weights(cause_group group,
                                                           bool watchdog_heavy) {
  switch (group) {
    case cause_group::perception:
      return {{fault_tag::recognition_system, 0.70}, {fault_tag::environment, 0.30}};
    case cause_group::planner_controller:
      return {{fault_tag::planner, 0.50},
              {fault_tag::incorrect_behavior_prediction, 0.28},
              {fault_tag::design_bug, 0.14},
              {fault_tag::av_controller_ml, 0.08}};
    case cause_group::system:
      if (watchdog_heavy) {
        // Volkswagen's System share is dominated by watchdog takeovers
        // (Table II's "Takeover-Request - watchdog error").
        return {{fault_tag::hang_crash, 0.55},
                {fault_tag::software, 0.25},
                {fault_tag::computer_system, 0.12},
                {fault_tag::sensor, 0.05},
                {fault_tag::network, 0.03}};
      }
      return {{fault_tag::software, 0.42},
              {fault_tag::computer_system, 0.20},
              {fault_tag::sensor, 0.18},
              {fault_tag::hang_crash, 0.07},
              {fault_tag::network, 0.06},
              {fault_tag::av_controller_system, 0.07}};
    case cause_group::unknown:
      return {{fault_tag::unknown, 1.0}};
  }
  throw logic_error("unreachable cause_group");
}

nlp::fault_tag sample_tag(cause_group group, rng& gen, bool watchdog_heavy) {
  const auto weights = tag_weights(group, watchdog_heavy);
  std::vector<double> w;
  w.reserve(weights.size());
  for (const auto& [tag, weight] : weights) w.push_back(weight);
  return weights[gen.categorical(w)].first;
}

}  // namespace avtk::dataset
