#include "dataset/ground_truth.h"

#include <array>

#include "util/errors.h"

namespace avtk::dataset::ground_truth {

namespace {

using m = manufacturer;
constexpr auto nil_i = std::optional<int>{};
constexpr auto nil_d = std::optional<double>{};
constexpr auto nil_l = std::optional<long long>{};

// Table I verbatim. Dashes in the paper become nullopt here.
const std::array<fleet_row, 24> k_table1 = {{
    // 2015-2016 release (report_year 2016)
    {m::mercedes_benz, 2016, 2, 1739.08, 1024, nil_l},
    {m::bosch, 2016, 2, 935.1, 625, nil_l},
    {m::delphi, 2016, 2, 16661.0, 405, 1},
    {m::gm_cruise, 2016, nil_i, 285.4, 135, nil_l},
    {m::nissan, 2016, 4, 1485.4, 106, nil_l},
    {m::tesla, 2016, nil_i, nil_d, nil_l, nil_l},
    {m::volkswagen, 2016, 2, 14946.11, 260, nil_l},
    {m::waymo, 2016, 49, 424332.0, 341, 9},
    {m::uber_atc, 2016, nil_i, nil_d, nil_l, nil_l},
    {m::honda, 2016, nil_i, nil_d, nil_l, nil_l},
    {m::ford, 2016, nil_i, nil_d, nil_l, nil_l},
    {m::bmw, 2016, nil_i, nil_d, nil_l, nil_l},
    // 2016-2017 release (report_year 2017)
    {m::mercedes_benz, 2017, nil_i, 673.41, 336, nil_l},
    {m::bosch, 2017, 3, 983.0, 1442, nil_l},
    {m::delphi, 2017, 2, 3090.0, 167, nil_l},
    {m::gm_cruise, 2017, nil_i, 9729.8, 149, 14},
    {m::nissan, 2017, 3, 4099.0, 29, 1},
    {m::tesla, 2017, 5, 550.0, 182, nil_l},
    {m::volkswagen, 2017, nil_i, nil_d, nil_l, nil_l},
    {m::waymo, 2017, 70, 635868.0, 123, 16},
    {m::uber_atc, 2017, nil_i, nil_d, nil_l, 1},
    {m::honda, 2017, 0, 0.0, 0, nil_l},
    {m::ford, 2017, 2, 590.0, 3, nil_l},
    {m::bmw, 2017, nil_i, 638.0, 1, nil_l},
}};

// Table IV verbatim (percent -> fraction).
const std::array<category_mix, 5> k_table4 = {{
    {m::delphi, 0.3759, 0.5017, 0.1224, 0.0},
    {m::nissan, 0.363, 0.4963, 0.1407, 0.0},
    {m::tesla, 0.0, 0.0, 0.0165, 0.9835},
    {m::volkswagen, 0.0, 0.0308, 0.8308, 0.1385},
    {m::waymo, 0.1013, 0.5345, 0.3642, 0.0},
}};

// Generation mixes: Table IV where available; Benz / Bosch / GM Cruise are
// calibrated so the corpus-wide ML/Design share lands at the paper's 64%.
const std::array<category_mix, 8> k_generation_mix = {{
    {m::mercedes_benz, 0.24, 0.46, 0.30, 0.0},
    {m::bosch, 0.21, 0.44, 0.35, 0.0},
    {m::delphi, 0.3759, 0.5017, 0.1224, 0.0},
    {m::gm_cruise, 0.25, 0.45, 0.30, 0.0},
    {m::nissan, 0.363, 0.4963, 0.1407, 0.0},
    {m::tesla, 0.0, 0.0, 0.0165, 0.9835},
    {m::volkswagen, 0.0, 0.0308, 0.8307, 0.1385},
    {m::waymo, 0.1013, 0.5345, 0.3642, 0.0},
}};

// Table V verbatim (percent -> fraction; Waymo's published row sums to
// 99.99 due to rounding).
const std::array<modality_mix, 7> k_table5 = {{
    {m::mercedes_benz, 0.4711, 0.5289, 0.0},
    {m::bosch, 0.0, 0.0, 1.0},
    {m::gm_cruise, 0.0, 0.0, 1.0},
    {m::nissan, 0.542, 0.458, 0.0},
    {m::tesla, 0.9835, 0.0165, 0.0},
    {m::volkswagen, 1.0, 0.0, 0.0},
    {m::waymo, 0.5032, 0.4967, 0.0},
}};

const std::array<modality_mix, 8> k_generation_modality = {{
    {m::mercedes_benz, 0.4711, 0.5289, 0.0},
    {m::bosch, 0.0, 0.0, 1.0},
    {m::delphi, 0.50, 0.50, 0.0},  // absent from Table V
    {m::gm_cruise, 0.0, 0.0, 1.0},
    {m::nissan, 0.542, 0.458, 0.0},
    {m::tesla, 0.9835, 0.0165, 0.0},
    {m::volkswagen, 1.0, 0.0, 0.0},
    {m::waymo, 0.5032, 0.4968, 0.0},
}};

// Table VI verbatim.
const std::array<accident_row, 5> k_table6 = {{
    {m::waymo, 25, 0.5952, 18.0},
    {m::delphi, 1, 0.0238, 572.0},
    {m::nissan, 1, 0.0238, 135.0},
    {m::gm_cruise, 14, 0.3333, 20.0},
    {m::uber_atc, 1, 0.0238, std::nullopt},
}};

// Table VII verbatim.
const std::array<reliability_row, 8> k_table7 = {{
    {m::mercedes_benz, 0.565, std::nullopt, std::nullopt},
    {m::volkswagen, 0.0181, std::nullopt, std::nullopt},
    {m::waymo, 0.000745, 4.140e-5, 20.7},
    {m::delphi, 0.0263, 4.599e-5, 22.99},
    {m::nissan, 0.0413, 3.057e-4, 15.285},
    {m::bosch, 0.811, std::nullopt, std::nullopt},
    {m::gm_cruise, 0.177, 8.843e-3, 4421.5},
    {m::tesla, 0.250, std::nullopt, std::nullopt},
}};

// Table VIII verbatim.
const std::array<mission_row, 4> k_table8 = {{
    {m::waymo, 4.140e-4, 4.22, 0.0398},
    {m::delphi, 4.599e-4, 4.69, 0.0442},
    {m::nissan, 3.057e-3, 31.19, 0.293},
    {m::gm_cruise, 8.843e-2, 902.34, 8.502},
}};

constexpr year_month ym(int y, int mo) {
  return year_month{y, static_cast<std::uint8_t>(mo)};
}

// Generation plans. Reaction-time parameters give per-manufacturer means
// around the paper's 0.85 s with Benz long-tailed (Fig. 11a) and Waymo
// tight (Fig. 11b). DPM decay is steepest for Waymo (the paper reports an
// ~8x median-DPM improvement across the window).
const std::array<generation_plan, 17> k_plans = {{
    // maker, release, cars, first, last, decay, has_rt, shape, scale, power, road/weather, vague
    {m::mercedes_benz, 2016, 2, ym(2014, 9), ym(2015, 11), -0.18, true, 0.90, 0.45, 1.6, true, false},
    {m::mercedes_benz, 2017, 2, ym(2015, 12), ym(2016, 11), -0.18, true, 0.90, 0.45, 1.6, true, false},
    {m::bosch, 2016, 2, ym(2014, 10), ym(2015, 11), -0.05, false, 1.5, 0.8, 1.0, false, false},
    {m::bosch, 2017, 3, ym(2015, 12), ym(2016, 11), -0.05, false, 1.5, 0.8, 1.0, false, false},
    {m::delphi, 2016, 2, ym(2014, 10), ym(2015, 11), -0.22, true, 1.4, 0.70, 1.0, true, false},
    {m::delphi, 2017, 2, ym(2015, 12), ym(2016, 11), -0.22, true, 1.4, 0.70, 1.0, true, false},
    {m::gm_cruise, 2016, 2, ym(2015, 6), ym(2015, 11), -0.10, false, 1.5, 0.8, 1.0, false, false,
     0.30, 0.35},
    {m::gm_cruise, 2017, 12, ym(2015, 12), ym(2016, 11), -0.10, false, 1.5, 0.8, 1.0, false,
     false, 0.10, 2.00},
    {m::nissan, 2016, 4, ym(2014, 11), ym(2015, 11), -0.25, true, 1.5, 0.82, 1.0, true, false,
     0.60, 0.60},
    {m::nissan, 2017, 3, ym(2015, 12), ym(2016, 11), -0.25, true, 1.5, 0.82, 1.0, true, false,
     0.60, 0.60},
    {m::tesla, 2017, 5, ym(2016, 10), ym(2016, 11), -0.05, true, 1.8, 0.53, 1.0, false, true},
    {m::volkswagen, 2016, 2, ym(2014, 9), ym(2015, 11), -0.15, true, 1.3, 0.74, 1.0, false, false},
    {m::waymo, 2016, 49, ym(2014, 9), ym(2015, 11), -0.45, true, 1.6, 0.70, 1.0, true, false},
    {m::waymo, 2017, 70, ym(2015, 12), ym(2016, 11), -0.45, true, 1.6, 0.70, 1.0, true, false},
    {m::ford, 2017, 2, ym(2016, 8), ym(2016, 11), 0.0, false, 1.5, 0.8, 1.0, false, false},
    {m::bmw, 2017, 1, ym(2016, 3), ym(2016, 4), 0.0, false, 1.5, 0.8, 1.0, false, false},
    {m::honda, 2017, 0, ym(2016, 1), ym(2016, 1), 0.0, false, 1.5, 0.8, 1.0, false, false},
}};

}  // namespace

std::span<const fleet_row> table1() { return k_table1; }

const fleet_row* table1_row_or_null(manufacturer maker, int report_year) {
  for (const auto& row : k_table1) {
    if (row.maker == maker && row.report_year == report_year) return &row;
  }
  return nullptr;
}

const fleet_row& table1_row(manufacturer maker, int report_year) {
  if (const auto* row = table1_row_or_null(maker, report_year)) return *row;
  throw not_found_error("Table I row for " + std::string(manufacturer_name(maker)) + "/" +
                        std::to_string(report_year));
}

std::span<const category_mix> table4() { return k_table4; }
std::span<const category_mix> generation_category_mix() { return k_generation_mix; }

const category_mix& generation_mix_for(manufacturer maker) {
  for (const auto& mix : k_generation_mix) {
    if (mix.maker == maker) return mix;
  }
  // Late entrants with a handful of events (Ford, BMW) get a generic mix.
  static const category_mix k_default = {manufacturer::ford, 0.25, 0.45, 0.30, 0.0};
  return k_default;
}

std::span<const modality_mix> table5() { return k_table5; }
std::span<const modality_mix> generation_modality_mix() { return k_generation_modality; }

const modality_mix& generation_modality_for(manufacturer maker) {
  for (const auto& mix : k_generation_modality) {
    if (mix.maker == maker) return mix;
  }
  static const modality_mix k_default = {manufacturer::ford, 0.5, 0.5, 0.0};
  return k_default;
}

std::span<const accident_row> table6() { return k_table6; }
std::span<const reliability_row> table7() { return k_table7; }
std::span<const mission_row> table8() { return k_table8; }

report_period period_for_release(int report_year) {
  if (report_year == 2016) return {2016, ym(2014, 9), ym(2015, 11)};
  if (report_year == 2017) return {2017, ym(2015, 12), ym(2016, 11)};
  throw not_found_error("report period for release " + std::to_string(report_year));
}

std::span<const generation_plan> generation_plans() { return k_plans; }

const generation_plan& plan_for(manufacturer maker, int report_year) {
  for (const auto& p : k_plans) {
    if (p.maker == maker && p.report_year == report_year) return p;
  }
  throw not_found_error("generation plan for " + std::string(manufacturer_name(maker)) + "/" +
                        std::to_string(report_year));
}

bool has_plan_for(manufacturer maker, int report_year) {
  for (const auto& p : k_plans) {
    if (p.maker == maker && p.report_year == report_year) return true;
  }
  return false;
}

}  // namespace avtk::dataset::ground_truth
