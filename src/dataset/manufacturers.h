// avtk/dataset/manufacturers.h
//
// The twelve manufacturers present in the CA DMV 2016/2017 releases, with
// the naming used throughout the paper's tables.
#pragma once

#include <array>
#include <optional>
#include <string_view>

namespace avtk::dataset {

enum class manufacturer {
  mercedes_benz,
  bosch,
  delphi,
  gm_cruise,
  nissan,
  tesla,
  volkswagen,
  waymo,
  uber_atc,
  honda,
  ford,
  bmw,
};

inline constexpr std::array<manufacturer, 12> k_all_manufacturers = {
    manufacturer::mercedes_benz, manufacturer::bosch,  manufacturer::delphi,
    manufacturer::gm_cruise,     manufacturer::nissan, manufacturer::tesla,
    manufacturer::volkswagen,    manufacturer::waymo,  manufacturer::uber_atc,
    manufacturer::honda,         manufacturer::ford,   manufacturer::bmw,
};

/// The eight manufacturers with enough disengagements for statistical
/// analysis (the paper drops Uber, BMW, Ford and Honda).
inline constexpr std::array<manufacturer, 8> k_analyzed_manufacturers = {
    manufacturer::mercedes_benz, manufacturer::volkswagen, manufacturer::waymo,
    manufacturer::delphi,        manufacturer::nissan,     manufacturer::bosch,
    manufacturer::gm_cruise,     manufacturer::tesla,
};

/// Paper-style display name ("Mercedes-Benz", "GM Cruise", "Waymo").
std::string_view manufacturer_name(manufacturer m);

/// Short name as used in figure axes ("Benz", "GMCruise").
std::string_view manufacturer_short_name(manufacturer m);

/// Stable machine identifier ("mercedes_benz").
std::string_view manufacturer_id(manufacturer m);

/// Parses any of the above spellings (plus "Google" for Waymo),
/// case-insensitively.
std::optional<manufacturer> manufacturer_from_string(std::string_view s);

}  // namespace avtk::dataset
