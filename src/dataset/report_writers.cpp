#include "dataset/report_writers.h"

#include <cstdio>

#include "dataset/ground_truth.h"
#include "util/csv.h"
#include "util/errors.h"
#include "util/strings.h"

namespace avtk::dataset {

namespace {

std::string fmt_miles(double miles) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.1f", miles);
  return buf;
}

std::string fmt_mph(double mph) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.0f", mph);
  return buf;
}

std::string fmt_seconds(double s) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2f", s);
  return buf;
}

std::string fmt_date_us(const date& d) {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%02u/%02u/%04d", d.month, d.day, d.year);
  return buf;
}

std::string fmt_date_us_short(const date& d) {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%u/%u/%02d", d.month, d.day, d.year % 100);
  return buf;
}

std::string fmt_month_dash(const year_month& ym) {
  // Waymo style: "May-16".
  return std::string(dates::month_abbrev(ym.month)) + "-" + std::to_string(ym.year % 100);
}

std::string fmt_month_name(const year_month& ym) {
  // "Nov 2014".
  return std::string(dates::month_abbrev(ym.month)) + " " + std::to_string(ym.year);
}

std::string fmt_time_12h(std::int32_t seconds_of_day) {
  const int h24 = seconds_of_day / 3600;
  const int m = (seconds_of_day / 60) % 60;
  const int h12 = h24 % 12 == 0 ? 12 : h24 % 12;
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%d:%02d %s", h12, m, h24 < 12 ? "AM" : "PM");
  return buf;
}

std::string fmt_time_24h(std::int32_t seconds_of_day) {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%02d:%02d:%02d", seconds_of_day / 3600,
                (seconds_of_day / 60) % 60, seconds_of_day % 60);
  return buf;
}

void push_header(ocr::page& p, manufacturer maker, int report_year) {
  const auto period = ground_truth::period_for_release(report_year);
  p.lines.push_back(std::string(manufacturer_name(maker)) +
                    " Autonomous Vehicle Disengagement Report");
  p.lines.push_back("DMV Release: " + std::to_string(report_year));
  p.lines.push_back("Reporting Period: " + period.first.to_pretty_string() + " to " +
                    period.last.to_pretty_string());
  p.lines.push_back("");
}

// The per-record seconds-of-day is synthesized from stable record content
// so the writers stay pure functions of their inputs.
std::int32_t synth_time_of_day(const disengagement_record& e) {
  std::size_t h = std::hash<std::string>{}(e.description + e.vehicle_id);
  if (e.event_date) h ^= static_cast<std::size_t>(e.event_date->to_days());
  // Business-hours bias: 07:00..19:59.
  const int hour = 7 + static_cast<int>(h % 13);
  const int minute = static_cast<int>((h / 13) % 60);
  const int sec = static_cast<int>((h / 779) % 60);
  return hour * 3600 + minute * 60 + sec;
}

std::string modality_marker_waymo(modality m) {
  // Waymo logs record driver-initiated precautionary takeovers as "Safe
  // Operation" and system-initiated ones as "Automatic".
  switch (m) {
    case modality::manual: return "Safe Operation";
    case modality::automatic: return "Automatic";
    case modality::planned: return "Planned";
    case modality::unknown: return "Unspecified";
  }
  throw logic_error("unreachable modality");
}

void write_benz(ocr::page& p, const std::vector<mileage_record>& mileage,
                const std::vector<disengagement_record>& events) {
  p.lines.push_back("SECTION: MILEAGE");
  p.lines.push_back("VIN,Month,Autonomous Miles");
  for (const auto& m : mileage) {
    p.lines.push_back(csv::format_line({m.vehicle_id, m.month.to_string(), fmt_miles(m.miles)}));
  }
  p.lines.push_back("SECTION: DISENGAGEMENTS");
  p.lines.push_back("Date,VIN,Initiated By,Reaction Time (s),Road Type,Weather,Description");
  for (const auto& e : events) {
    p.lines.push_back(csv::format_line(
        {e.event_date ? fmt_date_us(*e.event_date) : "", e.vehicle_id,
         e.mode == modality::manual ? "Driver" : "ADS",
         e.reaction_time_s ? fmt_seconds(*e.reaction_time_s) : "",
         std::string(road_type_name(e.road)), std::string(weather_name(e.conditions)),
         e.description}));
  }
}

void write_bosch(ocr::page& p, const std::vector<mileage_record>& mileage,
                 const std::vector<disengagement_record>& events) {
  p.lines.push_back("SECTION: MILEAGE");
  p.lines.push_back("Vehicle,Month,Miles");
  for (const auto& m : mileage) {
    p.lines.push_back(csv::format_line({m.vehicle_id, m.month.to_string(), fmt_miles(m.miles)}));
  }
  p.lines.push_back("SECTION: PLANNED TESTS");
  p.lines.push_back("Date,Vehicle,Test Type,Cause");
  for (const auto& e : events) {
    p.lines.push_back(csv::format_line({e.event_date ? fmt_date_us(*e.event_date) : "",
                                        e.vehicle_id, "Planned Test", e.description}));
  }
}

void write_delphi(ocr::page& p, const std::vector<mileage_record>& mileage,
                  const std::vector<disengagement_record>& events) {
  p.lines.push_back("MILEAGE");
  for (const auto& m : mileage) {
    p.lines.push_back("Mileage: " + m.vehicle_id + " | " + fmt_month_name(m.month) + " | " +
                      fmt_miles(m.miles));
  }
  p.lines.push_back("DISENGAGEMENTS");
  for (const auto& e : events) {
    std::string line = "Date: " + (e.event_date ? fmt_date_us_short(*e.event_date) : "unknown");
    line += " | Vehicle: " + e.vehicle_id;
    line += std::string(" | Mode: ") + (e.mode == modality::manual ? "Manual" : "Auto");
    if (e.reaction_time_s) line += " | Reaction: " + fmt_seconds(*e.reaction_time_s) + " s";
    line += " | Road: " + std::string(road_type_name(e.road));
    line += " | Weather: " + std::string(weather_name(e.conditions));
    line += " | Cause: " + e.description;
    p.lines.push_back(std::move(line));
  }
}

void write_gm_cruise(ocr::page& p, const std::vector<mileage_record>& mileage,
                     const std::vector<disengagement_record>& events) {
  p.lines.push_back("SECTION: MONTHLY MILES");
  p.lines.push_back("Vehicle,Month,Miles");
  for (const auto& m : mileage) {
    p.lines.push_back(csv::format_line({m.vehicle_id, m.month.to_string(), fmt_miles(m.miles)}));
  }
  p.lines.push_back("SECTION: EVENTS");
  p.lines.push_back("Date,Vehicle,Type,Description");
  for (const auto& e : events) {
    p.lines.push_back(csv::format_line({e.event_date ? e.event_date->to_string() : "",
                                        e.vehicle_id, "Planned Test", e.description}));
  }
}

void write_nissan(ocr::page& p, const std::vector<mileage_record>& mileage,
                  const std::vector<disengagement_record>& events) {
  p.lines.push_back("AUTONOMOUS MILES");
  for (const auto& m : mileage) {
    p.lines.push_back(m.vehicle_id + " -- " + fmt_month_name(m.month) + " -- " +
                      fmt_miles(m.miles));
  }
  p.lines.push_back("DISENGAGEMENTS");
  for (const auto& e : events) {
    std::string line = e.event_date ? fmt_date_us_short(*e.event_date) : "unknown";
    line += " -- " + fmt_time_12h(synth_time_of_day(e));
    line += " -- " + e.vehicle_id;
    line += " -- " + e.description;
    line += " -- " + std::string(road_type_name(e.road));
    line += " -- " + std::string(weather_name(e.conditions)) + "/Dry";
    line += std::string(" -- ") + (e.mode == modality::manual ? "Manual" : "Auto");
    if (e.reaction_time_s) line += " -- " + fmt_seconds(*e.reaction_time_s) + " s";
    p.lines.push_back(std::move(line));
  }
}

void write_tesla(ocr::page& p, const std::vector<mileage_record>& mileage,
                 const std::vector<disengagement_record>& events) {
  p.lines.push_back("SECTION: MILEAGE");
  p.lines.push_back("Vehicle,Month,Miles");
  for (const auto& m : mileage) {
    p.lines.push_back(csv::format_line({m.vehicle_id, m.month.to_string(), fmt_miles(m.miles)}));
  }
  p.lines.push_back("SECTION: DISENGAGEMENTS");
  p.lines.push_back("Date,Vehicle,Mode,Reaction Time (s),Description");
  for (const auto& e : events) {
    p.lines.push_back(csv::format_line(
        {e.event_date ? fmt_date_us(*e.event_date) : "", e.vehicle_id,
         e.mode == modality::manual ? "Manual" : "Auto",
         e.reaction_time_s ? fmt_seconds(*e.reaction_time_s) : "", e.description}));
  }
}

void write_volkswagen(ocr::page& p, const std::vector<mileage_record>& mileage,
                      const std::vector<disengagement_record>& events) {
  p.lines.push_back("AUTONOMOUS MILES");
  for (const auto& m : mileage) {
    p.lines.push_back(m.vehicle_id + " -- " + fmt_month_name(m.month) + " -- " +
                      fmt_miles(m.miles));
  }
  p.lines.push_back("TAKEOVER LOG");
  for (const auto& e : events) {
    std::string line = e.event_date ? fmt_date_us_short(*e.event_date) : "unknown";
    line += " -- " + fmt_time_24h(synth_time_of_day(e));
    line += " -- Takeover-Request";
    line += " -- " + e.description;
    if (e.reaction_time_s) line += " -- " + fmt_seconds(*e.reaction_time_s) + " s";
    p.lines.push_back(std::move(line));
  }
}

void write_waymo(ocr::page& p, const std::vector<mileage_record>& mileage,
                 const std::vector<disengagement_record>& events) {
  p.lines.push_back("MONTHLY AUTONOMOUS MILES");
  for (const auto& m : mileage) {
    p.lines.push_back(m.vehicle_id + " -- " + fmt_month_dash(m.month) + " -- " +
                      fmt_miles(m.miles));
  }
  p.lines.push_back("DISENGAGEMENT SUMMARY");
  for (const auto& e : events) {
    std::string line = e.event_month ? fmt_month_dash(*e.event_month) : "unknown";
    line += " -- " + std::string(road_type_name(e.road));
    line += " -- " + modality_marker_waymo(e.mode);
    line += " -- " + e.description;
    if (e.reaction_time_s) line += " -- " + fmt_seconds(*e.reaction_time_s) + " s";
    p.lines.push_back(std::move(line));
  }
}

void write_simple_csv(ocr::page& p, const std::vector<mileage_record>& mileage,
                      const std::vector<disengagement_record>& events) {
  // Ford / BMW: late entrants with a minimal format.
  p.lines.push_back("SECTION: MILEAGE");
  p.lines.push_back("Vehicle,Month,Miles");
  for (const auto& m : mileage) {
    p.lines.push_back(csv::format_line({m.vehicle_id, m.month.to_string(), fmt_miles(m.miles)}));
  }
  p.lines.push_back("SECTION: DISENGAGEMENTS");
  p.lines.push_back("Date,Vehicle,Mode,Description");
  for (const auto& e : events) {
    p.lines.push_back(csv::format_line({e.event_date ? fmt_date_us(*e.event_date) : "",
                                        e.vehicle_id,
                                        e.mode == modality::manual ? "Manual" : "Auto",
                                        e.description}));
  }
}

}  // namespace

ocr::document render_disengagement_report(manufacturer maker, int report_year,
                                          const std::vector<mileage_record>& mileage,
                                          const std::vector<disengagement_record>& events) {
  ocr::document doc;
  doc.title = std::string(manufacturer_name(maker)) + " Disengagement Report " +
              std::to_string(report_year);
  doc.manufacturer = manufacturer_name(maker);
  doc.report_year = report_year;

  ocr::page p;
  push_header(p, maker, report_year);

  switch (maker) {
    case manufacturer::mercedes_benz: write_benz(p, mileage, events); break;
    case manufacturer::bosch: write_bosch(p, mileage, events); break;
    case manufacturer::delphi: write_delphi(p, mileage, events); break;
    case manufacturer::gm_cruise: write_gm_cruise(p, mileage, events); break;
    case manufacturer::nissan: write_nissan(p, mileage, events); break;
    case manufacturer::tesla: write_tesla(p, mileage, events); break;
    case manufacturer::volkswagen: write_volkswagen(p, mileage, events); break;
    case manufacturer::waymo: write_waymo(p, mileage, events); break;
    case manufacturer::honda:
      p.lines.push_back("No autonomous testing performed during the reporting period.");
      break;
    default: write_simple_csv(p, mileage, events); break;
  }

  doc.pages.push_back(std::move(p));
  return doc;
}

ocr::document render_accident_report(const accident_record& accident) {
  ocr::document doc;
  doc.title = std::string(manufacturer_name(accident.maker)) + " Accident Report";
  doc.manufacturer = manufacturer_name(accident.maker);
  doc.report_year = accident.report_year;

  ocr::page p;
  p.lines.push_back("STATE OF CALIFORNIA");
  p.lines.push_back("REPORT OF TRAFFIC COLLISION INVOLVING AN AUTONOMOUS VEHICLE (OL 316)");
  p.lines.push_back("Manufacturer: " + std::string(manufacturer_name(accident.maker)));
  p.lines.push_back("DMV Release: " + std::to_string(accident.report_year));
  p.lines.push_back("Date of Accident: " +
                    (accident.event_date ? fmt_date_us(*accident.event_date) : "unknown"));
  p.lines.push_back("Vehicle: " +
                    (accident.vehicle_id.empty() ? std::string("[REDACTED]") : accident.vehicle_id));
  p.lines.push_back("Location: " + accident.location);
  p.lines.push_back("AV Speed (mph): " + (accident.av_speed_mph
                                              ? fmt_mph(*accident.av_speed_mph)
                                              : std::string("unknown")));
  p.lines.push_back("Other Vehicle Speed (mph): " +
                    (accident.other_speed_mph ? fmt_mph(*accident.other_speed_mph)
                                              : std::string("unknown")));
  p.lines.push_back(std::string("Autonomous Mode: ") +
                    (accident.av_in_autonomous_mode ? "Yes" : "No"));
  p.lines.push_back(std::string("Collision Type: ") +
                    (accident.rear_end ? "Rear-End" : "Side-Swipe"));
  p.lines.push_back(std::string("Near Intersection: ") +
                    (accident.near_intersection ? "Yes" : "No"));
  p.lines.push_back(std::string("Injuries: ") + (accident.injuries ? "Yes" : "No"));
  p.lines.push_back("Description: " + accident.description);

  doc.pages.push_back(std::move(p));
  return doc;
}

}  // namespace avtk::dataset
