#include "dataset/records.h"

#include <cmath>

#include "util/errors.h"
#include "util/strings.h"

namespace avtk::dataset {

std::string_view modality_name(modality m) {
  switch (m) {
    case modality::automatic: return "Automatic";
    case modality::manual: return "Manual";
    case modality::planned: return "Planned";
    case modality::unknown: return "Unknown";
  }
  throw logic_error("unreachable modality");
}

std::optional<modality> modality_from_string(std::string_view s) {
  const auto t = str::trim(s);
  if (str::iequals(t, "Automatic") || str::iequals(t, "Auto") ||
      str::icontains(t, "initiated by the av") || str::iequals(t, "ADS")) {
    return modality::automatic;
  }
  if (str::iequals(t, "Manual") || str::iequals(t, "Driver") ||
      str::icontains(t, "initiated by the driver") || str::iequals(t, "Safe Operation")) {
    return modality::manual;
  }
  if (str::iequals(t, "Planned") || str::icontains(t, "planned test")) return modality::planned;
  if (str::iequals(t, "Unknown") || t.empty()) return modality::unknown;
  return std::nullopt;
}

std::string_view road_type_name(road_type r) {
  switch (r) {
    case road_type::city_street: return "City Street";
    case road_type::highway: return "Highway";
    case road_type::interstate: return "Interstate";
    case road_type::freeway: return "Freeway";
    case road_type::parking_lot: return "Parking Lot";
    case road_type::suburban: return "Suburban";
    case road_type::rural: return "Rural";
    case road_type::urban: return "Urban";
    case road_type::unknown: return "Unknown";
  }
  throw logic_error("unreachable road_type");
}

std::optional<road_type> road_type_from_string(std::string_view s) {
  const auto t = str::trim(s);
  if (t.empty() || str::iequals(t, "Unknown")) return road_type::unknown;
  if (str::icontains(t, "city") || str::icontains(t, "street")) return road_type::city_street;
  if (str::icontains(t, "interstate")) return road_type::interstate;
  if (str::icontains(t, "freeway")) return road_type::freeway;
  if (str::icontains(t, "highway")) return road_type::highway;
  if (str::icontains(t, "parking")) return road_type::parking_lot;
  if (str::icontains(t, "suburban")) return road_type::suburban;
  if (str::icontains(t, "rural")) return road_type::rural;
  if (str::icontains(t, "urban")) return road_type::urban;
  return std::nullopt;
}

std::string_view weather_name(weather w) {
  switch (w) {
    case weather::sunny: return "Sunny";
    case weather::cloudy: return "Cloudy";
    case weather::rainy: return "Rainy";
    case weather::overcast: return "Overcast";
    case weather::foggy: return "Foggy";
    case weather::clear_night: return "Clear Night";
    case weather::unknown: return "Unknown";
  }
  throw logic_error("unreachable weather");
}

std::optional<weather> weather_from_string(std::string_view s) {
  const auto t = str::trim(s);
  if (t.empty() || str::iequals(t, "Unknown")) return weather::unknown;
  if (str::icontains(t, "sun")) return weather::sunny;
  if (str::icontains(t, "rain") || str::icontains(t, "wet")) return weather::rainy;
  if (str::icontains(t, "overcast")) return weather::overcast;
  if (str::icontains(t, "cloud")) return weather::cloudy;
  if (str::icontains(t, "fog")) return weather::foggy;
  if (str::icontains(t, "night")) return weather::clear_night;
  if (str::icontains(t, "dry") || str::icontains(t, "clear")) return weather::sunny;
  return std::nullopt;
}

std::optional<year_month> disengagement_record::month_bucket() const {
  if (event_month) return event_month;
  if (event_date) return year_month{event_date->year, event_date->month};
  return std::nullopt;
}

std::optional<double> accident_record::relative_speed_mph() const {
  if (!av_speed_mph || !other_speed_mph) return std::nullopt;
  return std::fabs(*av_speed_mph - *other_speed_mph);
}

}  // namespace avtk::dataset
