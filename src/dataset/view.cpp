#include "dataset/view.h"

#include <algorithm>
#include <array>
#include <map>
#include <set>
#include <tuple>

namespace avtk::dataset {

std::vector<const disengagement_record*> database_view::query_disengagements(
    const std::function<bool(const disengagement_record&)>& pred) const {
  std::vector<const disengagement_record*> out;
  for (const auto& d : disengagements()) {
    if (pred(d)) out.push_back(&d);
  }
  return out;
}

std::vector<const disengagement_record*> database_view::disengagements_of(
    manufacturer maker) const {
  // Direct loop, not query_disengagements: this is the per-maker scan every
  // serve payload builder sits on, and the std::function indirection costs
  // more than the comparison it wraps.
  std::vector<const disengagement_record*> out;
  out.reserve(disengagements().size());
  for (const auto& d : disengagements()) {
    if (d.maker == maker) out.push_back(&d);
  }
  return out;
}

std::vector<const accident_record*> database_view::accidents_of(manufacturer maker) const {
  std::vector<const accident_record*> out;
  for (const auto& a : accidents()) {
    if (a.maker == maker) out.push_back(&a);
  }
  return out;
}

std::vector<manufacturer> database_view::manufacturers_present() const {
  // Flag array over the (small, dense) manufacturer enum; emitting in
  // k_all_manufacturers order preserves the sorted-set enum order the
  // serve tier's deterministic payloads rely on.
  std::array<bool, k_all_manufacturers.size()> seen{};
  for (const auto& d : disengagements()) seen[static_cast<std::size_t>(d.maker)] = true;
  for (const auto& m : mileage()) seen[static_cast<std::size_t>(m.maker)] = true;
  std::vector<manufacturer> out;
  for (const auto maker : k_all_manufacturers) {
    if (seen[static_cast<std::size_t>(maker)]) out.push_back(maker);
  }
  return out;
}

double database_view::total_miles() const {
  double t = 0;
  for (const auto& m : mileage()) t += m.miles;
  return t;
}

double database_view::total_miles(manufacturer maker) const {
  double t = 0;
  for (const auto& m : mileage()) {
    if (m.maker == maker) t += m.miles;
  }
  return t;
}

long long database_view::total_disengagements() const {
  return static_cast<long long>(disengagements().size());
}

long long database_view::total_disengagements(manufacturer maker) const {
  long long t = 0;
  for (const auto& d : disengagements()) {
    if (d.maker == maker) ++t;
  }
  return t;
}

long long database_view::total_accidents() const {
  return static_cast<long long>(accidents().size());
}

long long database_view::total_accidents(manufacturer maker) const {
  long long t = 0;
  for (const auto& a : accidents()) {
    if (a.maker == maker) ++t;
  }
  return t;
}

// Canonical home of the monthly attribution join. failure_database::
// vehicle_months() delegates here through an unrestricted view, so the
// algorithm stays single-sourced and the golden equivalence digests pin
// both paths at once. See database.h for the attribution semantics
// (equal-share within a known month, miles-proportional fallback,
// fractional-remainder distribution with content-hash tie breaks).
std::vector<vehicle_month> database_view::vehicle_months() const {
  // Key: (maker, vehicle, month index).
  std::map<std::tuple<manufacturer, std::string, std::int64_t>, vehicle_month> cells;
  for (const auto& m : mileage()) {
    auto& cell = cells[{m.maker, m.vehicle_id, m.month.index()}];
    cell.maker = m.maker;
    cell.vehicle_id = m.vehicle_id;
    cell.month = m.month;
    cell.miles += m.miles;
  }

  std::map<std::pair<manufacturer, std::int64_t>, long long> unattributed;  // month -1 = any
  for (const auto& d : disengagements()) {
    const auto bucket = d.month_bucket();
    bool attributed = false;
    if (bucket && !d.vehicle_id.empty()) {
      const auto it = cells.find({d.maker, d.vehicle_id, bucket->index()});
      if (it != cells.end()) {
        ++it->second.disengagements;
        attributed = true;
      }
    }
    if (!attributed) {
      ++unattributed[{d.maker, bucket ? bucket->index() : -1}];
    }
  }

  for (const auto& [key, count] : unattributed) {
    const auto [maker, month_index] = key;
    bool equal_share = month_index >= 0;
    std::vector<vehicle_month*> mine;
    double miles_total = 0;
    for (auto& [cell_key, cell] : cells) {
      if (cell.maker != maker) continue;
      if (month_index >= 0 && cell.month.index() != month_index) continue;
      if (!(cell.miles > 0)) continue;
      mine.push_back(&cell);
      miles_total += cell.miles;
    }
    if ((mine.empty() || miles_total <= 0) && month_index >= 0) {
      // No mileage reported for that month: fall back to the whole history,
      // miles-proportionally.
      equal_share = false;
      mine.clear();
      miles_total = 0;
      for (auto& [cell_key, cell] : cells) {
        if (cell.maker != maker) continue;
        if (!(cell.miles > 0)) continue;
        mine.push_back(&cell);
        miles_total += cell.miles;
      }
    }
    if (mine.empty() || miles_total <= 0) continue;
    std::vector<double> expected(mine.size());
    std::vector<long long> assigned(mine.size());
    long long assigned_total = 0;
    for (std::size_t i = 0; i < mine.size(); ++i) {
      expected[i] = equal_share
                        ? static_cast<double>(count) / static_cast<double>(mine.size())
                        : static_cast<double>(count) * mine[i]->miles / miles_total;
      assigned[i] = static_cast<long long>(expected[i]);
      assigned_total += assigned[i];
    }
    // Distribute the remainder to the cells with the largest fractional
    // parts. Equal-share splits make every fractional part identical, so
    // ties are broken by a content hash — otherwise the first vehicles in
    // id order would absorb every event, month after month.
    std::vector<std::size_t> order(mine.size());
    for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
    const auto tie_hash = [&](std::size_t i) {
      return std::hash<std::string>{}(mine[i]->vehicle_id) ^
             (static_cast<std::size_t>(mine[i]->month.index()) * 0x9E3779B97F4A7C15ULL);
    };
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
      const double fa = expected[a] - static_cast<double>(assigned[a]);
      const double fb = expected[b] - static_cast<double>(assigned[b]);
      if (fa != fb) return fa > fb;
      return tie_hash(a) < tie_hash(b);
    });
    for (std::size_t i = 0; assigned_total < count && i < order.size(); ++i, ++assigned_total) {
      ++assigned[order[i]];
    }
    for (std::size_t i = 0; i < mine.size(); ++i) mine[i]->disengagements += assigned[i];
  }

  std::vector<vehicle_month> out;
  out.reserve(cells.size());
  for (auto& [key, cell] : cells) out.push_back(std::move(cell));
  return out;
}

std::vector<failure_database::vehicle_total> database_view::vehicle_totals() const {
  std::map<std::pair<manufacturer, std::string>, failure_database::vehicle_total> totals;
  for (const auto& vm : vehicle_months()) {
    auto& t = totals[{vm.maker, vm.vehicle_id}];
    t.maker = vm.maker;
    t.vehicle_id = vm.vehicle_id;
    t.miles += vm.miles;
    t.disengagements += vm.disengagements;
  }
  std::vector<failure_database::vehicle_total> out;
  out.reserve(totals.size());
  for (auto& [key, t] : totals) out.push_back(std::move(t));
  return out;
}

std::vector<double> database_view::reaction_times(std::optional<manufacturer> maker) const {
  std::vector<double> out;
  for (const auto& d : disengagements()) {
    if (maker && d.maker != *maker) continue;
    if (d.reaction_time_s) out.push_back(*d.reaction_time_s);
  }
  return out;
}

}  // namespace avtk::dataset
