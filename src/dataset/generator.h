// avtk/dataset/generator.h
//
// The calibrated synthetic-corpus generator — the reproduction's stand-in
// for the CA DMV scanned-report archive. It emits:
//
//   * ground-truth structured events (disengagements with their true fault
//     tags, monthly mileage, accidents) whose marginals match every number
//     the paper publishes (Tables I, IV, V, VI; Figs. 10-12 shapes), and
//   * raw report documents in heterogeneous manufacturer-specific formats
//     (rendered by report_writers.h), optionally degraded by the scan noise
//     model so the OCR/parse path is exercised for real.
//
// Determinism: everything is driven by the config seed.
#pragma once

#include <cstdint>
#include <vector>

#include "dataset/database.h"
#include "dataset/records.h"
#include "ocr/document.h"

namespace avtk::dataset {

struct generator_config {
  std::uint64_t seed = 20180625;  ///< DSN 2018 :)
  bool render_documents = true;   ///< produce raw report documents
  bool corrupt_documents = true;  ///< apply the scan-noise model
  ocr::scan_quality quality = ocr::scan_quality::fair;
  double narrative_shell_probability = 0.5;  ///< "driver safely disengaged..." suffix
};

/// The generated corpus.
struct generated_corpus {
  // Ground truth (tags filled with the *true* causes).
  std::vector<disengagement_record> disengagements;
  std::vector<mileage_record> mileage;
  std::vector<accident_record> accidents;

  // Raw documents as delivered to the pipeline. `pristine_documents`
  // parallels `documents` (same order/line structure) and serves as the
  // "manual transcription" fallback, exactly as the paper fell back to
  // manual conversion when Tesseract failed.
  std::vector<ocr::document> documents;
  std::vector<ocr::document> pristine_documents;

  /// Loads the ground-truth events into a failure_database (bypassing the
  /// OCR + parse path; used for validation and A/B tests).
  failure_database to_database() const;
};

/// Generates the full 26-month, 12-manufacturer corpus.
generated_corpus generate_corpus(const generator_config& config = {});

/// Generates only one manufacturer/release slice (testing convenience).
generated_corpus generate_slice(manufacturer maker, int report_year,
                                const generator_config& config = {});

}  // namespace avtk::dataset
