// avtk/dataset/records.h
//
// The normalized record schema every manufacturer-specific report is parsed
// into (Stage II's output). Fields the DMV does not mandate are optional —
// reports genuinely omit them, and the analysis code must cope.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "dataset/manufacturers.h"
#include "nlp/ontology.h"
#include "util/dates.h"

namespace avtk::dataset {

/// Who / what initiated the disengagement (Table V's modality).
enum class modality {
  automatic,  ///< the ADS handed back control
  manual,     ///< the safety driver took control
  planned,    ///< part of a planned test campaign
  unknown,
};

std::string_view modality_name(modality m);
std::optional<modality> modality_from_string(std::string_view s);

/// Road type taxonomy used in the reports (9 distinct types per §III-C).
enum class road_type {
  city_street,
  highway,
  interstate,
  freeway,
  parking_lot,
  suburban,
  rural,
  urban,
  unknown,
};

std::string_view road_type_name(road_type r);
std::optional<road_type> road_type_from_string(std::string_view s);

/// Weather conditions, where reported.
enum class weather {
  sunny,
  cloudy,
  rainy,
  overcast,
  foggy,
  clear_night,
  unknown,
};

std::string_view weather_name(weather w);
std::optional<weather> weather_from_string(std::string_view s);

/// One disengagement event, normalized.
struct disengagement_record {
  manufacturer maker = manufacturer::waymo;
  int report_year = 0;                       ///< DMV release: 2016 or 2017
  std::optional<date> event_date;            ///< full date when reported
  std::optional<year_month> event_month;     ///< month granularity (Waymo style)
  std::string vehicle_id;                    ///< empty when redacted/absent
  modality mode = modality::unknown;
  std::string description;                   ///< free-text cause
  road_type road = road_type::unknown;
  weather conditions = weather::unknown;
  std::optional<double> reaction_time_s;     ///< driver reaction time

  /// Filled by Stage III (NLP labeling).
  nlp::fault_tag tag = nlp::fault_tag::unknown;
  nlp::failure_category category = nlp::failure_category::unknown;

  /// Month bucket for aggregation: event_month, else event_date's month.
  std::optional<year_month> month_bucket() const;
};

/// Monthly autonomous mileage for one vehicle.
struct mileage_record {
  manufacturer maker = manufacturer::waymo;
  int report_year = 0;
  std::string vehicle_id;
  year_month month;
  double miles = 0.0;
};

/// One accident (OL-316-style report), normalized.
struct accident_record {
  manufacturer maker = manufacturer::waymo;
  int report_year = 0;
  std::optional<date> event_date;
  std::string vehicle_id;                 ///< often redacted -> empty
  std::string location;
  std::string description;               ///< narrative text
  std::optional<double> av_speed_mph;
  std::optional<double> other_speed_mph;
  bool av_in_autonomous_mode = true;
  bool rear_end = false;                  ///< rear-end collision
  bool near_intersection = false;
  bool injuries = false;

  /// |av - other| speed when both are known.
  std::optional<double> relative_speed_mph() const;
};

/// Per-manufacturer per-release summary (Table I's row material).
struct fleet_summary {
  manufacturer maker = manufacturer::waymo;
  int report_year = 0;
  std::optional<int> cars;
  std::optional<double> miles;
  std::optional<long long> disengagements;
  std::optional<long long> accidents;
};

}  // namespace avtk::dataset
