// avtk/dataset/report_writers.h
//
// Renders structured events into the heterogeneous per-manufacturer report
// formats the pipeline must cope with (the DMV "does not enforce any data
// format specification", §IV). Each writer produces one disengagement
// report document per (manufacturer, release); accidents are rendered one
// OL-316-style document each. The matching readers live in src/parse.
#pragma once

#include <vector>

#include "dataset/records.h"
#include "ocr/document.h"

namespace avtk::dataset {

/// Renders one manufacturer/release disengagement report (mileage section +
/// event section) in that manufacturer's format.
ocr::document render_disengagement_report(manufacturer maker, int report_year,
                                          const std::vector<mileage_record>& mileage,
                                          const std::vector<disengagement_record>& events);

/// Renders one accident as an OL-316-style report document.
ocr::document render_accident_report(const accident_record& accident);

}  // namespace avtk::dataset
