#include "dataset/manufacturers.h"

#include "util/errors.h"
#include "util/strings.h"

namespace avtk::dataset {

std::string_view manufacturer_name(manufacturer m) {
  switch (m) {
    case manufacturer::mercedes_benz: return "Mercedes-Benz";
    case manufacturer::bosch: return "Bosch";
    case manufacturer::delphi: return "Delphi";
    case manufacturer::gm_cruise: return "GM Cruise";
    case manufacturer::nissan: return "Nissan";
    case manufacturer::tesla: return "Tesla";
    case manufacturer::volkswagen: return "Volkswagen";
    case manufacturer::waymo: return "Waymo";
    case manufacturer::uber_atc: return "Uber ATC";
    case manufacturer::honda: return "Honda";
    case manufacturer::ford: return "Ford";
    case manufacturer::bmw: return "BMW";
  }
  throw logic_error("unreachable manufacturer");
}

std::string_view manufacturer_short_name(manufacturer m) {
  switch (m) {
    case manufacturer::mercedes_benz: return "Benz";
    case manufacturer::gm_cruise: return "GMCruise";
    case manufacturer::uber_atc: return "Uber";
    default: return manufacturer_name(m);
  }
}

std::string_view manufacturer_id(manufacturer m) {
  switch (m) {
    case manufacturer::mercedes_benz: return "mercedes_benz";
    case manufacturer::bosch: return "bosch";
    case manufacturer::delphi: return "delphi";
    case manufacturer::gm_cruise: return "gm_cruise";
    case manufacturer::nissan: return "nissan";
    case manufacturer::tesla: return "tesla";
    case manufacturer::volkswagen: return "volkswagen";
    case manufacturer::waymo: return "waymo";
    case manufacturer::uber_atc: return "uber_atc";
    case manufacturer::honda: return "honda";
    case manufacturer::ford: return "ford";
    case manufacturer::bmw: return "bmw";
  }
  throw logic_error("unreachable manufacturer");
}

std::optional<manufacturer> manufacturer_from_string(std::string_view s) {
  const auto t = str::trim(s);
  for (const auto m : k_all_manufacturers) {
    if (str::iequals(t, manufacturer_name(m)) || str::iequals(t, manufacturer_short_name(m)) ||
        str::iequals(t, manufacturer_id(m))) {
      return m;
    }
  }
  if (str::iequals(t, "Google") || str::iequals(t, "Waymo (Google)")) return manufacturer::waymo;
  if (str::iequals(t, "GMCruise") || str::iequals(t, "GM") || str::iequals(t, "Cruise")) {
    return manufacturer::gm_cruise;
  }
  if (str::iequals(t, "Mercedes") || str::iequals(t, "Mercedes Benz")) {
    return manufacturer::mercedes_benz;
  }
  if (str::iequals(t, "Uber")) return manufacturer::uber_atc;
  if (str::iequals(t, "VW")) return manufacturer::volkswagen;
  return std::nullopt;
}

}  // namespace avtk::dataset
