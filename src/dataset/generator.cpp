#include "dataset/generator.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "dataset/ground_truth.h"
#include "dataset/phrase_bank.h"
#include "dataset/report_writers.h"
#include "ocr/noise.h"
#include "util/errors.h"

namespace avtk::dataset {

namespace {

namespace gt = ground_truth;

std::string vehicle_name(manufacturer maker, int index) {
  char buf[48];
  switch (maker) {
    case manufacturer::mercedes_benz:
      std::snprintf(buf, sizeof(buf), "MB-AV%02d", index + 1);
      break;
    case manufacturer::bosch:
      std::snprintf(buf, sizeof(buf), "BOSCH-%d", index + 1);
      break;
    case manufacturer::delphi:
      std::snprintf(buf, sizeof(buf), "DEL-%02d", index + 1);
      break;
    case manufacturer::gm_cruise:
      std::snprintf(buf, sizeof(buf), "GMC-%03d", index + 1);
      break;
    case manufacturer::nissan: {
      static const char* names[] = {"Alfa", "Bravo", "Charlie", "Delta", "Echo", "Foxtrot"};
      std::snprintf(buf, sizeof(buf), "Leaf %d (%s)", index + 1,
                    names[index % 6]);
      break;
    }
    case manufacturer::tesla:
      std::snprintf(buf, sizeof(buf), "TES-%02d", index + 1);
      break;
    case manufacturer::volkswagen:
      std::snprintf(buf, sizeof(buf), "VW-A%d", index + 1);
      break;
    case manufacturer::waymo:
      std::snprintf(buf, sizeof(buf), "WAYMO-AV%03d", index + 1);
      break;
    default:
      std::snprintf(buf, sizeof(buf), "%s-%02d",
                    std::string(manufacturer_short_name(maker)).c_str(), index + 1);
      break;
  }
  return buf;
}

std::vector<year_month> months_between(year_month first, year_month last) {
  std::vector<year_month> out;
  for (auto m = first; m <= last; m = m.next()) out.push_back(m);
  return out;
}

/// Road-type weights reflecting the dataset's 31.7% city / 29.26% highway /
/// 14.63% interstate / 9.75% freeway / 14.6% other split (§III-C).
road_type sample_road_type(rng& gen) {
  static const std::vector<std::pair<road_type, double>> weights = {
      {road_type::city_street, 0.317}, {road_type::highway, 0.2926},
      {road_type::interstate, 0.1463}, {road_type::freeway, 0.0975},
      {road_type::parking_lot, 0.05},  {road_type::suburban, 0.05},
      {road_type::rural, 0.046},
  };
  std::vector<double> w;
  for (const auto& [r, weight] : weights) w.push_back(weight);
  return weights[gen.categorical(w)].first;
}

weather sample_weather(rng& gen) {
  static const std::vector<std::pair<weather, double>> weights = {
      {weather::sunny, 0.55},    {weather::cloudy, 0.15}, {weather::overcast, 0.12},
      {weather::rainy, 0.10},    {weather::foggy, 0.03},  {weather::clear_night, 0.05},
  };
  std::vector<double> w;
  for (const auto& [r, weight] : weights) w.push_back(weight);
  return weights[gen.categorical(w)].first;
}

modality sample_modality(const gt::modality_mix& mix, rng& gen) {
  const std::vector<double> w = {mix.automatic, mix.manual, mix.planned};
  switch (gen.categorical(w)) {
    case 0: return modality::automatic;
    case 1: return modality::manual;
    default: return modality::planned;
  }
}

cause_group sample_cause_group(const gt::category_mix& mix, rng& gen) {
  const std::vector<double> w = {mix.perception_recognition, mix.planner_controller, mix.system,
                                 mix.unknown};
  switch (gen.categorical(w)) {
    case 0: return cause_group::perception;
    case 1: return cause_group::planner_controller;
    case 2: return cause_group::system;
    default: return cause_group::unknown;
  }
}

/// Apportions `total` miles across cells proportionally to `weights`,
/// rounding to 0.1 mile; the final cell absorbs the rounding residue so the
/// result sums to `total` exactly.
std::vector<double> apportion_miles(double total, const std::vector<double>& weights) {
  const std::size_t cells = weights.size();
  double sum = 0;
  for (double w : weights) sum += w;
  std::vector<double> out(cells, 0.0);
  if (!(sum > 0) || cells == 0) return out;
  double assigned = 0;
  for (std::size_t i = 0; i < cells; ++i) {
    out[i] = std::round(total * weights[i] / sum * 10.0) / 10.0;
    assigned += out[i];
  }
  out[cells - 1] += std::round((total - assigned) * 10.0) / 10.0;
  if (out[cells - 1] < 0) out[cells - 1] = 0;
  return out;
}

/// Multinomially distributes `total` events across cells with the given
/// weights; the counts sum to `total` exactly.
std::vector<long long> split_events(long long total, const std::vector<double>& weights,
                                    rng& gen) {
  std::vector<long long> out(weights.size(), 0);
  double weight_left = 0;
  for (double w : weights) weight_left += w;
  long long remaining = total;
  for (std::size_t i = 0; i + 1 < weights.size() && remaining > 0; ++i) {
    if (weight_left <= 0) break;
    const double p = std::clamp(weights[i] / weight_left, 0.0, 1.0);
    // Binomial draw via Poisson approximation is biased; draw exactly.
    long long k = 0;
    for (long long t = 0; t < remaining; ++t) {
      if (gen.bernoulli(p)) ++k;
    }
    out[i] = k;
    remaining -= k;
    weight_left -= weights[i];
  }
  if (!weights.empty()) out[weights.size() - 1] += remaining;
  return out;
}

date random_day_in(year_month ym, rng& gen) {
  const int days = date::days_in_month(ym.year, ym.month);
  return date::make(ym.year, ym.month, static_cast<int>(gen.uniform_int(1, days)));
}

struct accident_quota {
  manufacturer maker;
  int report_year;
  int count;
};

// Accident counts per (manufacturer, release), consistent with Tables I & VI.
const std::vector<accident_quota>& accident_quotas() {
  static const std::vector<accident_quota> q = {
      {manufacturer::waymo, 2016, 9},  {manufacturer::waymo, 2017, 16},
      {manufacturer::delphi, 2016, 1}, {manufacturer::gm_cruise, 2017, 14},
      {manufacturer::nissan, 2017, 1}, {manufacturer::uber_atc, 2017, 1},
  };
  return q;
}

const std::vector<std::string>& accident_locations() {
  static const std::vector<std::string> locations = {
      "Intersection of El Camino Real and Clark Av, Mountain View, CA",
      "Intersection of South Shoreline Blvd and High School Way, Mountain View, CA",
      "Intersection of Castro St and California St, Mountain View, CA",
      "Intersection of Central Expressway and Rengstorff Ave, Mountain View, CA",
      "Intersection of San Antonio Rd and California St, Palo Alto, CA",
      "Intersection of 1st St and Taylor St, San Jose, CA",
      "Intersection of Folsom St and 16th St, San Francisco, CA",
      "Intersection of Valencia St and Cesar Chavez St, San Francisco, CA",
      "Intersection of Harrison St and 7th St, San Francisco, CA",
      "Parking lot near 1600 Amphitheatre Pkwy, Mountain View, CA",
  };
  return locations;
}

std::string accident_narrative(bool rear_end, rng& gen) {
  static const std::vector<std::string> rear = {
      "The AV was in autonomous mode and decelerating for a turn when it was struck from "
      "behind by a conventional vehicle. The driver of the other vehicle could not "
      "anticipate the AV's stop-and-go movement toward the intersection.",
      "The AV yielded to a pedestrian in the crosswalk and slowed; the vehicle behind "
      "did not stop in time and collided with the rear bumper of the AV.",
      "While creeping forward to gauge cross traffic, the AV stopped again and the "
      "following vehicle made contact with the rear of the AV at low speed.",
      "The test driver proactively took control to avoid a reckless road user; braking "
      "in the constrained scenario led the rear vehicle to collide with the back of the AV.",
  };
  static const std::vector<std::string> side = {
      "A conventional vehicle changing lanes made contact with the side of the AV while "
      "both vehicles were moving at low speed near the intersection.",
      "The AV was side-swiped by a vehicle drifting out of the adjacent lane; damage was "
      "limited to the sensor housing and body panel.",
      "During a lane change the other vehicle accelerated into the gap and grazed the "
      "AV's front quarter panel.",
  };
  return gen.pick(rear_end ? rear : side);
}

// The two Section II case studies as fixed records, included verbatim in
// every generated corpus (both occurred in Waymo prototypes).
std::vector<accident_record> case_study_accidents() {
  std::vector<accident_record> out;
  {
    accident_record a;  // Case Study I: real-time decisions
    a.maker = manufacturer::waymo;
    a.report_year = 2016;
    a.event_date = date::make(2015, 10, 8);
    a.location = "Intersection of South Shoreline Blvd and High School Way, Mountain View, CA";
    a.description =
        "The AV decided to yield to a pedestrian crossing the street but did not stop. The "
        "test driver proactively took control as a precaution. A car ahead was also yielding "
        "and a vehicle to the rear in the adjacent lane was changing lanes; the driver could "
        "only brake, and the rear vehicle collided with the back of the AV. Logged as "
        "disengage for a recklessly behaving road user / incorrect behavior prediction.";
    a.av_speed_mph = 5.0;
    a.other_speed_mph = 10.0;
    a.rear_end = true;
    a.near_intersection = true;
    out.push_back(std::move(a));
  }
  {
    accident_record a;  // Case Study II: anticipating AV behavior
    a.maker = manufacturer::waymo;
    a.report_year = 2017;
    a.event_date = date::make(2016, 5, 19);
    a.location = "Intersection of El Camino Real and Clark Av, Mountain View, CA";
    a.description =
        "The AV signaled a right turn, decelerated, came to a complete stop, then moved "
        "toward the intersection so the recognition system could analyze cross traffic. The "
        "driver of the rear vehicle interpreted the initial movement as the AV continuing and "
        "collided with the rear of the AV. Logged as disengage for a recklessly behaving "
        "road user.";
    a.av_speed_mph = 1.0;
    a.other_speed_mph = 4.0;
    a.rear_end = true;
    a.near_intersection = true;
    out.push_back(std::move(a));
  }
  return out;
}

void generate_one_slice(manufacturer maker, int report_year, const generator_config& config,
                        rng& gen, generated_corpus& corpus) {
  if (!gt::has_plan_for(maker, report_year)) return;
  const auto& plan = gt::plan_for(maker, report_year);
  const auto& row = gt::table1_row(maker, report_year);

  const double total_miles = row.miles.value_or(0.0);
  const long long total_events = row.disengagements.value_or(0);
  const int cars = row.cars && *row.cars > 0 ? *row.cars : plan.cars;

  std::vector<mileage_record> slice_mileage;
  std::vector<disengagement_record> slice_events;

  if (cars > 0 && total_miles > 0) {
    const auto months = months_between(plan.first_month, plan.last_month);
    const std::size_t cells = static_cast<std::size_t>(cars) * months.size();

    // Miles per (car, month): per-car lognormal share (fleet skew) times a
    // gamma(2)-ish per-month factor.
    std::vector<double> mile_weights(cells);
    {
      std::vector<double> car_factor(static_cast<std::size_t>(cars));
      for (auto& f : car_factor) f = gen.lognormal(0.0, plan.mileage_sigma);
      for (int c = 0; c < cars; ++c) {
        for (std::size_t mi = 0; mi < months.size(); ++mi) {
          mile_weights[static_cast<std::size_t>(c) * months.size() + mi] =
              car_factor[static_cast<std::size_t>(c)] *
              (gen.exponential(1.0) + gen.exponential(1.0));
        }
      }
    }
    const auto miles = apportion_miles(total_miles, mile_weights);

    // Disengagement weights: proportional to miles, scaled by how far into
    // the fleet's cumulative mileage the month falls (DPM decay).
    std::vector<double> month_cumulative(months.size(), 0.0);
    {
      double cum = 0;
      for (std::size_t mi = 0; mi < months.size(); ++mi) {
        for (int c = 0; c < cars; ++c) {
          cum += miles[static_cast<std::size_t>(c) * months.size() + mi];
        }
        month_cumulative[mi] = cum;
      }
    }
    std::vector<double> weights(cells, 0.0);
    for (int c = 0; c < cars; ++c) {
      for (std::size_t mi = 0; mi < months.size(); ++mi) {
        const std::size_t idx = static_cast<std::size_t>(c) * months.size() + mi;
        const double frac = month_cumulative[mi] / total_miles;  // (0, 1]
        weights[idx] = std::pow(miles[idx], plan.event_miles_exponent) *
                       std::pow(std::max(frac, 1e-6), plan.dpm_decay);
      }
    }
    const auto counts = split_events(total_events, weights, gen);

    const auto& cat_mix = gt::generation_mix_for(maker);
    const auto& mod_mix = gt::generation_modality_for(maker);
    const bool watchdog_heavy = maker == manufacturer::volkswagen;
    const bool monthly_granularity = maker == manufacturer::waymo;

    // GM Cruise fielded a new generation of prototypes for the 2017
    // release; give them distinct identities so per-car metrics do not
    // merge the two fleets.
    const int fleet_offset =
        (maker == manufacturer::gm_cruise && report_year == 2017) ? 50 : 0;
    for (int c = 0; c < cars; ++c) {
      const auto vid = vehicle_name(maker, c + fleet_offset);
      for (std::size_t mi = 0; mi < months.size(); ++mi) {
        const std::size_t idx = static_cast<std::size_t>(c) * months.size() + mi;
        if (miles[idx] > 0) {
          mileage_record m;
          m.maker = maker;
          m.report_year = report_year;
          m.vehicle_id = vid;
          m.month = months[mi];
          m.miles = miles[idx];
          slice_mileage.push_back(std::move(m));
        }
        for (long long e = 0; e < counts[idx]; ++e) {
          disengagement_record d;
          d.maker = maker;
          d.report_year = report_year;
          if (monthly_granularity) {
            d.event_month = months[mi];
            // Waymo aggregates by month and does not name vehicles.
          } else {
            d.event_date = random_day_in(months[mi], gen);
            d.vehicle_id = vid;
          }
          d.mode = sample_modality(mod_mix, gen);
          const auto group =
              plan.vague_descriptions ? cause_group::unknown : sample_cause_group(cat_mix, gen);
          d.tag = sample_tag(group, gen, watchdog_heavy);
          d.category = nlp::category_of(d.tag);
          d.description = d.tag == nlp::fault_tag::unknown
                              ? sample_vague_description(gen)
                              : sample_description(d.tag, gen,
                                                   config.narrative_shell_probability);
          if (plan.reports_road_weather) {
            d.road = sample_road_type(gen);
            d.conditions = sample_weather(gen);
          }
          if (plan.reports_reaction_time) {
            // §V-A4: drivers relax as the system matures — reaction times
            // stretch with the fleet's cumulative mileage (the paper
            // measures Pearson r of +0.19 for Waymo, +0.11 for Benz).
            const double maturity = month_cumulative[mi] / total_miles;  // (0, 1]
            const double complacency_stretch = 1.0 + 0.45 * maturity;
            d.reaction_time_s =
                std::round(gen.exponentiated_weibull(plan.rt_shape, plan.rt_scale,
                                                     plan.rt_power) *
                           complacency_stretch * 100.0) /
                100.0;
            if (*d.reaction_time_s < 0.01) d.reaction_time_s = 0.01;
          }
          slice_events.push_back(std::move(d));
        }
      }
    }

    // The Volkswagen 2016 report contains one implausible ~4 h reaction
    // time the paper calls out ("we suspect that this is an incorrect
    // measurement, but cannot confirm").
    if (maker == manufacturer::volkswagen && report_year == 2016 && !slice_events.empty()) {
      slice_events.front().reaction_time_s = 13860.0;  // 3 h 51 min
    }
  }

  if (config.render_documents) {
    auto pristine = render_disengagement_report(maker, report_year, slice_mileage, slice_events);
    pristine.quality = config.quality;
    auto delivered = pristine;
    if (config.corrupt_documents) {
      auto doc_gen = gen.fork();
      ocr::corrupt_document(delivered, doc_gen);
    }
    corpus.pristine_documents.push_back(std::move(pristine));
    corpus.documents.push_back(std::move(delivered));
  }

  corpus.mileage.insert(corpus.mileage.end(), slice_mileage.begin(), slice_mileage.end());
  corpus.disengagements.insert(corpus.disengagements.end(), slice_events.begin(),
                               slice_events.end());
}

void generate_accidents(manufacturer maker, int report_year, int count,
                        const generator_config& config, rng& gen, generated_corpus& corpus) {
  const auto period = gt::period_for_release(report_year);
  for (int i = 0; i < count; ++i) {
    accident_record a;
    a.maker = maker;
    a.report_year = report_year;
    const auto span = period.last.index() - period.first.index();
    const auto ym = year_month::from_index(period.first.index() + gen.uniform_int(0, span));
    a.event_date = random_day_in(ym, gen);
    a.location = gen.pick(accident_locations());
    a.rear_end = gen.bernoulli(0.72);
    a.near_intersection = gen.bernoulli(0.88);
    a.injuries = false;  // the paper: "no serious injuries were reported"
    a.av_in_autonomous_mode = gen.bernoulli(0.85);
    // Fig. 12: low-speed exponentials. Speeds are correlated — in the
    // typical rear-end the other vehicle closes on a slowing AV — so the
    // relative speed is drawn directly (>80% below 10 mph per the paper)
    // and the other vehicle's speed derived from it.
    const double av = std::min(30.0, std::round(gen.exponential(5.0)));
    const double rel = std::min(35.0, std::round(gen.exponential(5.5)));
    a.av_speed_mph = av;
    a.other_speed_mph = std::min(40.0, a.rear_end ? av + rel : std::fabs(av - rel));
    a.description = accident_narrative(a.rear_end, gen);
    corpus.accidents.push_back(std::move(a));
  }
  (void)config;
}

void render_accident_documents(const generator_config& config, rng& gen,
                               generated_corpus& corpus) {
  if (!config.render_documents) return;
  for (const auto& a : corpus.accidents) {
    auto pristine = render_accident_report(a);
    pristine.quality = config.quality;
    auto delivered = pristine;
    if (config.corrupt_documents) {
      auto doc_gen = gen.fork();
      ocr::corrupt_document(delivered, doc_gen);
    }
    corpus.pristine_documents.push_back(std::move(pristine));
    corpus.documents.push_back(std::move(delivered));
  }
}

}  // namespace

failure_database generated_corpus::to_database() const {
  failure_database db;
  for (const auto& d : disengagements) db.add_disengagement(d);
  for (const auto& m : mileage) db.add_mileage(m);
  for (const auto& a : accidents) db.add_accident(a);
  return db;
}

generated_corpus generate_corpus(const generator_config& config) {
  rng gen(config.seed);
  generated_corpus corpus;

  for (const int year : {2016, 2017}) {
    for (const auto maker : k_all_manufacturers) {
      auto slice_gen = gen.fork();
      generate_one_slice(maker, year, config, slice_gen, corpus);
    }
  }

  // Accidents: the two fixed case studies count toward Waymo's quotas.
  auto cs = case_study_accidents();
  corpus.accidents.insert(corpus.accidents.end(), cs.begin(), cs.end());
  for (const auto& quota : accident_quotas()) {
    int count = quota.count;
    for (const auto& fixed : cs) {
      if (fixed.maker == quota.maker && fixed.report_year == quota.report_year) --count;
    }
    auto acc_gen = gen.fork();
    generate_accidents(quota.maker, quota.report_year, count, config, acc_gen, corpus);
  }
  auto doc_gen = gen.fork();
  render_accident_documents(config, doc_gen, corpus);

  return corpus;
}

generated_corpus generate_slice(manufacturer maker, int report_year,
                                const generator_config& config) {
  rng gen(config.seed);
  generated_corpus corpus;
  auto slice_gen = gen.fork();
  generate_one_slice(maker, report_year, config, slice_gen, corpus);
  for (const auto& quota : accident_quotas()) {
    if (quota.maker != maker || quota.report_year != report_year) continue;
    auto acc_gen = gen.fork();
    generate_accidents(maker, report_year, quota.count, config, acc_gen, corpus);
  }
  auto doc_gen = gen.fork();
  render_accident_documents(config, doc_gen, corpus);
  return corpus;
}

}  // namespace avtk::dataset
