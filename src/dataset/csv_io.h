// avtk/dataset/csv_io.h
//
// Serialization of the consolidated failure database to/from CSV — the
// interchange format downstream users (R, pandas, spreadsheets) actually
// consume. Three tables: disengagements, mileage, accidents. Round-trip
// safe: export(import(x)) == x field for field.
#pragma once

#include <string>

#include "dataset/database.h"

namespace avtk::dataset {

/// The three CSV documents.
struct database_csv {
  std::string disengagements;
  std::string mileage;
  std::string accidents;
};

/// Exports the database (headers included, RFC-4180 quoting).
database_csv export_csv(const failure_database& db);

/// Imports a database previously produced by export_csv. Unknown columns
/// are tolerated (and ignored); missing required columns throw
/// avtk::parse_error, as do malformed field values.
failure_database import_csv(const database_csv& csv);

}  // namespace avtk::dataset
