// avtk/dataset/view.h
//
// Non-owning, optionally filtered read view over a failure_database — the
// currency every Stage-IV builder (core/{metrics,tables,figures,context,
// analysis,exposure}, reliability/events) computes from.
//
// A view is a pointer to the database plus, per domain, an optional
// *selection*: an ascending list of record indices. No selection means the
// whole domain; a selection restricts iteration to exactly those records,
// in corpus order. Because selections preserve corpus order, every
// aggregate computed through a view is byte-identical to the same
// aggregate computed over a materialized copy of the selected records —
// the equivalence contract serve's `--query-exec naive|indexed` gate pins.
//
// Views are cheap to construct (a pointer and three spans — no record is
// ever copied) and valid for as long as the underlying database and the
// selection storage outlive them. serve executes queries against a pinned
// immutable snapshot, so both lifetimes are the snapshot pin's.
//
// `database_view` is implicitly constructible from `failure_database`, so
// every builder taking a view accepts a plain database at zero cost (an
// unrestricted view of all three domains).
//
// A third, *composed* mode backs each domain with a list of record
// pointers instead of one array: the sharded snapshot store concatenates
// per-shard records back into original corpus order (by global record id)
// and serves cross-shard queries through the same builder surface —
// byte-identical to the single-store oracle because iteration order is
// identical.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <span>
#include <vector>

#include "dataset/database.h"

namespace avtk::dataset {

/// An ascending list of record indices into one domain array.
using selection = std::vector<std::uint32_t>;

/// Iterable over one domain, in one of three modes: a whole array, an
/// array through a selection, or a list of record pointers (the sharded
/// store's cross-shard merge — serve/store.h — concatenates per-shard
/// records back into global-id order as pointer lists). The range does not
/// own the array, selection or pointer storage; all must outlive it.
template <typename T>
class record_range {
 public:
  explicit record_range(const std::vector<T>& base)
      : base_(&base), restricted_(false) {}
  record_range(const std::vector<T>& base, std::span<const std::uint32_t> sel)
      : base_(&base), sel_(sel), restricted_(true) {}
  explicit record_range(std::span<const T* const> ptrs) : ptrs_(ptrs) {}

  /// Self-contained: carries the array/selection handles by value, so an
  /// iterator outlives the (often temporary) record_range it came from.
  class iterator {
   public:
    iterator(const record_range& range, std::size_t pos)
        : base_(range.base_),
          sel_(range.sel_),
          ptrs_(range.ptrs_),
          restricted_(range.restricted_),
          pos_(pos) {}
    const T& operator*() const {
      if (base_ == nullptr) return *ptrs_[pos_];
      return restricted_ ? (*base_)[sel_[pos_]] : (*base_)[pos_];
    }
    const T* operator->() const { return &**this; }
    iterator& operator++() {
      ++pos_;
      return *this;
    }
    bool operator==(const iterator& other) const { return pos_ == other.pos_; }
    bool operator!=(const iterator& other) const { return pos_ != other.pos_; }

   private:
    const std::vector<T>* base_;
    std::span<const std::uint32_t> sel_;
    std::span<const T* const> ptrs_;
    bool restricted_;
    std::size_t pos_;
  };

  iterator begin() const { return iterator(*this, 0); }
  iterator end() const { return iterator(*this, size()); }
  std::size_t size() const {
    if (base_ == nullptr) return ptrs_.size();
    return restricted_ ? sel_.size() : base_->size();
  }
  bool empty() const { return size() == 0; }

 private:
  const std::vector<T>* base_ = nullptr;  ///< null in pointer mode
  std::span<const std::uint32_t> sel_;
  std::span<const T* const> ptrs_;
  bool restricted_ = false;
};

class database_view {
 public:
  /// Unrestricted view of the whole database. Implicit on purpose: every
  /// builder taking a `const database_view&` keeps accepting a
  /// `failure_database` argument unchanged.
  database_view(const failure_database& db)  // NOLINT(google-explicit-constructor)
      : db_(&db) {}

  /// Filtered view: a selection (ascending indices) per domain, nullopt
  /// meaning the domain is unrestricted. The selection storage is
  /// borrowed, not copied — the caller keeps it alive.
  database_view(const failure_database& db,
                std::optional<std::span<const std::uint32_t>> disengagements,
                std::optional<std::span<const std::uint32_t>> mileage,
                std::optional<std::span<const std::uint32_t>> accidents)
      : db_(&db), dis_(disengagements), mil_(mileage), acc_(accidents) {}

  /// Composed view: one pointer list per domain, in whatever order the
  /// caller merged them (the sharded store concatenates per-shard records
  /// back into ascending global-id — i.e. original corpus — order). There
  /// is no backing failure_database: the pointers may span several shard
  /// databases, so base() must not be called on a composed view. Pointer
  /// storage and the records it points into are borrowed; the caller keeps
  /// both alive (serve holds the shard snapshot pins inside its merge
  /// plan).
  database_view(std::span<const disengagement_record* const> disengagements,
                std::span<const mileage_record* const> mileage,
                std::span<const accident_record* const> accidents)
      : dis_ptrs_(disengagements), mil_ptrs_(mileage), acc_ptrs_(accidents), composed_(true) {}

  const failure_database& base() const { return *db_; }
  /// True when any domain carries a selection.
  bool restricted() const { return dis_.has_value() || mil_.has_value() || acc_.has_value(); }
  /// True for a pointer-composed view (no single backing database).
  bool composed() const { return composed_; }

  record_range<disengagement_record> disengagements() const {
    if (composed_) return record_range<disengagement_record>(dis_ptrs_);
    return dis_ ? record_range<disengagement_record>(db_->disengagements(), *dis_)
                : record_range<disengagement_record>(db_->disengagements());
  }
  record_range<mileage_record> mileage() const {
    if (composed_) return record_range<mileage_record>(mil_ptrs_);
    return mil_ ? record_range<mileage_record>(db_->mileage(), *mil_)
                : record_range<mileage_record>(db_->mileage());
  }
  record_range<accident_record> accidents() const {
    if (composed_) return record_range<accident_record>(acc_ptrs_);
    return acc_ ? record_range<accident_record>(db_->accidents(), *acc_)
                : record_range<accident_record>(db_->accidents());
  }

  // The read surface the Stage-IV builders consume — same names, same
  // semantics, same iteration order as the failure_database originals
  // (which delegate the aggregation-heavy ones here).
  std::vector<const disengagement_record*> query_disengagements(
      const std::function<bool(const disengagement_record&)>& pred) const;
  std::vector<const disengagement_record*> disengagements_of(manufacturer maker) const;
  std::vector<const accident_record*> accidents_of(manufacturer maker) const;
  std::vector<manufacturer> manufacturers_present() const;

  double total_miles() const;
  double total_miles(manufacturer maker) const;
  long long total_disengagements() const;
  long long total_disengagements(manufacturer maker) const;
  long long total_accidents() const;
  long long total_accidents(manufacturer maker) const;

  std::vector<vehicle_month> vehicle_months() const;
  std::vector<failure_database::vehicle_total> vehicle_totals() const;
  std::vector<double> reaction_times(std::optional<manufacturer> maker = std::nullopt) const;

 private:
  const failure_database* db_ = nullptr;  ///< null for composed views
  std::optional<std::span<const std::uint32_t>> dis_;
  std::optional<std::span<const std::uint32_t>> mil_;
  std::optional<std::span<const std::uint32_t>> acc_;
  std::span<const disengagement_record* const> dis_ptrs_;
  std::span<const mileage_record* const> mil_ptrs_;
  std::span<const accident_record* const> acc_ptrs_;
  bool composed_ = false;
};

}  // namespace avtk::dataset
