#include "dataset/database.h"

#include <algorithm>
#include <set>

#include "dataset/view.h"

namespace avtk::dataset {

std::string database_version::to_string() const {
  return "d" + std::to_string(disengagements) + ".m" + std::to_string(mileage) + ".a" +
         std::to_string(accidents);
}

// Copy-on-write guard: every mutator funnels through here. A shared array
// (use_count > 1: some snapshot or copy still references it) is cloned
// before the write; a uniquely owned one mutates in place, so a burst of
// appends after one share pays a single clone. The use_count probe can
// race only downward (a concurrent reader dropping its reference), so a
// stale read merely clones unnecessarily — it can never mutate an array a
// reader still sees.
template <typename T>
std::vector<T>& failure_database::owned(std::shared_ptr<std::vector<T>>& arr) {
  if (arr.use_count() != 1) arr = std::make_shared<std::vector<T>>(*arr);
  return *arr;
}

void failure_database::add_disengagement(disengagement_record rec) {
  add_disengagement(std::move(rec), disengagement_ids_->size());
}

void failure_database::add_disengagement(disengagement_record rec, std::uint64_t id) {
  owned(disengagements_).push_back(std::move(rec));
  owned(disengagement_ids_).push_back(id);
  ++version_.disengagements;
}

void failure_database::relabel_disengagement(std::size_t index, nlp::fault_tag tag,
                                             nlp::failure_category category) {
  auto& records = owned(disengagements_);
  records.at(index).tag = tag;
  records.at(index).category = category;
  ++version_.disengagements;
}

void failure_database::add_mileage(mileage_record rec) {
  add_mileage(std::move(rec), mileage_ids_->size());
}

void failure_database::add_mileage(mileage_record rec, std::uint64_t id) {
  owned(mileage_).push_back(std::move(rec));
  owned(mileage_ids_).push_back(id);
  ++version_.mileage;
}

void failure_database::add_accident(accident_record rec) {
  add_accident(std::move(rec), accident_ids_->size());
}

void failure_database::add_accident(accident_record rec, std::uint64_t id) {
  owned(accidents_).push_back(std::move(rec));
  owned(accident_ids_).push_back(id);
  ++version_.accidents;
}

std::vector<const disengagement_record*> failure_database::query_disengagements(
    const std::function<bool(const disengagement_record&)>& pred) const {
  std::vector<const disengagement_record*> out;
  for (const auto& d : *disengagements_) {
    if (pred(d)) out.push_back(&d);
  }
  return out;
}

std::vector<const disengagement_record*> failure_database::disengagements_of(
    manufacturer maker) const {
  return query_disengagements([maker](const disengagement_record& d) { return d.maker == maker; });
}

std::vector<const accident_record*> failure_database::accidents_of(manufacturer maker) const {
  std::vector<const accident_record*> out;
  for (const auto& a : *accidents_) {
    if (a.maker == maker) out.push_back(&a);
  }
  return out;
}

std::vector<manufacturer> failure_database::manufacturers_present() const {
  std::set<manufacturer> seen;
  for (const auto& d : *disengagements_) seen.insert(d.maker);
  for (const auto& m : *mileage_) seen.insert(m.maker);
  return {seen.begin(), seen.end()};
}

double failure_database::total_miles() const {
  double t = 0;
  for (const auto& m : *mileage_) t += m.miles;
  return t;
}

double failure_database::total_miles(manufacturer maker) const {
  double t = 0;
  for (const auto& m : *mileage_) {
    if (m.maker == maker) t += m.miles;
  }
  return t;
}

long long failure_database::total_disengagements() const {
  return static_cast<long long>(disengagements_->size());
}

long long failure_database::total_disengagements(manufacturer maker) const {
  long long t = 0;
  for (const auto& d : *disengagements_) {
    if (d.maker == maker) ++t;
  }
  return t;
}

long long failure_database::total_accidents() const {
  return static_cast<long long>(accidents_->size());
}

long long failure_database::total_accidents(manufacturer maker) const {
  long long t = 0;
  for (const auto& a : *accidents_) {
    if (a.maker == maker) ++t;
  }
  return t;
}

std::vector<vehicle_month> failure_database::vehicle_months() const {
  // The attribution join lives in database_view (the filtered serve path
  // runs it over selections); an unrestricted view reproduces the
  // historical whole-database behavior exactly.
  return database_view(*this).vehicle_months();
}

std::vector<failure_database::vehicle_total> failure_database::vehicle_totals() const {
  return database_view(*this).vehicle_totals();
}

void failure_database::share_disengagements_from(const failure_database& other) {
  disengagements_ = other.disengagements_;
  disengagement_ids_ = other.disengagement_ids_;
  version_.disengagements = other.version_.disengagements;
}

void failure_database::share_mileage_from(const failure_database& other) {
  mileage_ = other.mileage_;
  mileage_ids_ = other.mileage_ids_;
  version_.mileage = other.version_.mileage;
}

void failure_database::share_accidents_from(const failure_database& other) {
  accidents_ = other.accidents_;
  accident_ids_ = other.accident_ids_;
  version_.accidents = other.version_.accidents;
}

std::vector<double> failure_database::reaction_times(std::optional<manufacturer> maker) const {
  std::vector<double> out;
  for (const auto& d : *disengagements_) {
    if (maker && d.maker != *maker) continue;
    if (d.reaction_time_s) out.push_back(*d.reaction_time_s);
  }
  return out;
}

}  // namespace avtk::dataset
