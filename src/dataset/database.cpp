#include "dataset/database.h"

#include <algorithm>
#include <set>

namespace avtk::dataset {

std::string database_version::to_string() const {
  return "d" + std::to_string(disengagements) + ".m" + std::to_string(mileage) + ".a" +
         std::to_string(accidents);
}

// Copy-on-write guard: every mutator funnels through here. A shared array
// (use_count > 1: some snapshot or copy still references it) is cloned
// before the write; a uniquely owned one mutates in place, so a burst of
// appends after one share pays a single clone. The use_count probe can
// race only downward (a concurrent reader dropping its reference), so a
// stale read merely clones unnecessarily — it can never mutate an array a
// reader still sees.
template <typename T>
std::vector<T>& failure_database::owned(std::shared_ptr<std::vector<T>>& arr) {
  if (arr.use_count() != 1) arr = std::make_shared<std::vector<T>>(*arr);
  return *arr;
}

void failure_database::add_disengagement(disengagement_record rec) {
  owned(disengagements_).push_back(std::move(rec));
  ++version_.disengagements;
}

void failure_database::relabel_disengagement(std::size_t index, nlp::fault_tag tag,
                                             nlp::failure_category category) {
  auto& records = owned(disengagements_);
  records.at(index).tag = tag;
  records.at(index).category = category;
  ++version_.disengagements;
}

void failure_database::add_mileage(mileage_record rec) {
  owned(mileage_).push_back(std::move(rec));
  ++version_.mileage;
}

void failure_database::add_accident(accident_record rec) {
  owned(accidents_).push_back(std::move(rec));
  ++version_.accidents;
}

std::vector<const disengagement_record*> failure_database::query_disengagements(
    const std::function<bool(const disengagement_record&)>& pred) const {
  std::vector<const disengagement_record*> out;
  for (const auto& d : *disengagements_) {
    if (pred(d)) out.push_back(&d);
  }
  return out;
}

std::vector<const disengagement_record*> failure_database::disengagements_of(
    manufacturer maker) const {
  return query_disengagements([maker](const disengagement_record& d) { return d.maker == maker; });
}

std::vector<const accident_record*> failure_database::accidents_of(manufacturer maker) const {
  std::vector<const accident_record*> out;
  for (const auto& a : *accidents_) {
    if (a.maker == maker) out.push_back(&a);
  }
  return out;
}

std::vector<manufacturer> failure_database::manufacturers_present() const {
  std::set<manufacturer> seen;
  for (const auto& d : *disengagements_) seen.insert(d.maker);
  for (const auto& m : *mileage_) seen.insert(m.maker);
  return {seen.begin(), seen.end()};
}

double failure_database::total_miles() const {
  double t = 0;
  for (const auto& m : *mileage_) t += m.miles;
  return t;
}

double failure_database::total_miles(manufacturer maker) const {
  double t = 0;
  for (const auto& m : *mileage_) {
    if (m.maker == maker) t += m.miles;
  }
  return t;
}

long long failure_database::total_disengagements() const {
  return static_cast<long long>(disengagements_->size());
}

long long failure_database::total_disengagements(manufacturer maker) const {
  long long t = 0;
  for (const auto& d : *disengagements_) {
    if (d.maker == maker) ++t;
  }
  return t;
}

long long failure_database::total_accidents() const {
  return static_cast<long long>(accidents_->size());
}

long long failure_database::total_accidents(manufacturer maker) const {
  long long t = 0;
  for (const auto& a : *accidents_) {
    if (a.maker == maker) ++t;
  }
  return t;
}

std::vector<vehicle_month> failure_database::vehicle_months() const {
  // Key: (maker, vehicle, month index).
  std::map<std::tuple<manufacturer, std::string, std::int64_t>, vehicle_month> cells;
  for (const auto& m : *mileage_) {
    auto& cell = cells[{m.maker, m.vehicle_id, m.month.index()}];
    cell.maker = m.maker;
    cell.vehicle_id = m.vehicle_id;
    cell.month = m.month;
    cell.miles += m.miles;
  }

  // Direct attribution where vehicle + month resolve to a mileage cell.
  // Events without a vehicle (or with an unmatchable one) are attributed
  // within their month when the month is known — in EQUAL shares across
  // the vehicles active that month (Waymo-style monthly aggregates carry
  // no per-vehicle signal, and an equal split is the natural uninformative
  // prior; it also reproduces the paper's per-car DPM medians, which sit
  // above the fleet-average DPM because low-mileage cars absorb the same
  // event share as workhorses). Events with no month at all fall back to
  // miles-proportional attribution across the whole history.
  std::map<std::pair<manufacturer, std::int64_t>, long long> unattributed;  // month -1 = any
  for (const auto& d : *disengagements_) {
    const auto bucket = d.month_bucket();
    bool attributed = false;
    if (bucket && !d.vehicle_id.empty()) {
      const auto it = cells.find({d.maker, d.vehicle_id, bucket->index()});
      if (it != cells.end()) {
        ++it->second.disengagements;
        attributed = true;
      }
    }
    if (!attributed) {
      ++unattributed[{d.maker, bucket ? bucket->index() : -1}];
    }
  }

  for (const auto& [key, count] : unattributed) {
    const auto [maker, month_index] = key;
    bool equal_share = month_index >= 0;
    std::vector<vehicle_month*> mine;
    double miles_total = 0;
    for (auto& [cell_key, cell] : cells) {
      if (cell.maker != maker) continue;
      if (month_index >= 0 && cell.month.index() != month_index) continue;
      if (!(cell.miles > 0)) continue;
      mine.push_back(&cell);
      miles_total += cell.miles;
    }
    if ((mine.empty() || miles_total <= 0) && month_index >= 0) {
      // No mileage reported for that month: fall back to the whole history,
      // miles-proportionally.
      equal_share = false;
      mine.clear();
      miles_total = 0;
      for (auto& [cell_key, cell] : cells) {
        if (cell.maker != maker) continue;
        if (!(cell.miles > 0)) continue;
        mine.push_back(&cell);
        miles_total += cell.miles;
      }
    }
    if (mine.empty() || miles_total <= 0) continue;
    std::vector<double> expected(mine.size());
    std::vector<long long> assigned(mine.size());
    long long assigned_total = 0;
    for (std::size_t i = 0; i < mine.size(); ++i) {
      expected[i] = equal_share
                        ? static_cast<double>(count) / static_cast<double>(mine.size())
                        : static_cast<double>(count) * mine[i]->miles / miles_total;
      assigned[i] = static_cast<long long>(expected[i]);
      assigned_total += assigned[i];
    }
    // Distribute the remainder to the cells with the largest fractional
    // parts. Equal-share splits make every fractional part identical, so
    // ties are broken by a content hash — otherwise the first vehicles in
    // id order would absorb every event, month after month.
    std::vector<std::size_t> order(mine.size());
    for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
    const auto tie_hash = [&](std::size_t i) {
      return std::hash<std::string>{}(mine[i]->vehicle_id) ^
             (static_cast<std::size_t>(mine[i]->month.index()) * 0x9E3779B97F4A7C15ULL);
    };
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
      const double fa = expected[a] - static_cast<double>(assigned[a]);
      const double fb = expected[b] - static_cast<double>(assigned[b]);
      if (fa != fb) return fa > fb;
      return tie_hash(a) < tie_hash(b);
    });
    for (std::size_t i = 0; assigned_total < count && i < order.size(); ++i, ++assigned_total) {
      ++assigned[order[i]];
    }
    for (std::size_t i = 0; i < mine.size(); ++i) mine[i]->disengagements += assigned[i];
  }

  std::vector<vehicle_month> out;
  out.reserve(cells.size());
  for (auto& [key, cell] : cells) out.push_back(std::move(cell));
  return out;
}

std::vector<failure_database::vehicle_total> failure_database::vehicle_totals() const {
  std::map<std::pair<manufacturer, std::string>, vehicle_total> totals;
  for (const auto& vm : vehicle_months()) {
    auto& t = totals[{vm.maker, vm.vehicle_id}];
    t.maker = vm.maker;
    t.vehicle_id = vm.vehicle_id;
    t.miles += vm.miles;
    t.disengagements += vm.disengagements;
  }
  std::vector<vehicle_total> out;
  out.reserve(totals.size());
  for (auto& [key, t] : totals) out.push_back(std::move(t));
  return out;
}

std::vector<double> failure_database::reaction_times(std::optional<manufacturer> maker) const {
  std::vector<double> out;
  for (const auto& d : *disengagements_) {
    if (maker && d.maker != *maker) continue;
    if (d.reaction_time_s) out.push_back(*d.reaction_time_s);
  }
  return out;
}

}  // namespace avtk::dataset
