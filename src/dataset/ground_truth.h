// avtk/dataset/ground_truth.h
//
// Every number the paper publishes, as machine-readable constants. Two
// uses: (1) the corpus generator is calibrated against these marginals, and
// (2) the bench harnesses print paper-vs-measured rows from them.
//
// Report periods: the DMV "2016" release covers Sep 2014 - Nov 2015; the
// "2017" release covers Dec 2015 - Nov 2016 (26 months total).
#pragma once

#include <optional>
#include <span>
#include <vector>

#include "dataset/manufacturers.h"
#include "util/dates.h"

namespace avtk::dataset::ground_truth {

// ---------------------------------------------------------------- Table I

/// One Table I cell group: a manufacturer's row for one DMV release.
struct fleet_row {
  manufacturer maker;
  int report_year;  ///< 2016 or 2017
  std::optional<int> cars;
  std::optional<double> miles;
  std::optional<long long> disengagements;
  std::optional<long long> accidents;
};

/// All 24 rows of Table I (12 manufacturers x 2 releases).
std::span<const fleet_row> table1();

/// The row for (maker, report_year); throws avtk::not_found_error.
const fleet_row& table1_row(manufacturer maker, int report_year);

/// As above, but nullptr when the (maker, release) pair is not in Table I.
const fleet_row* table1_row_or_null(manufacturer maker, int report_year);

/// Headline totals.
inline constexpr long long k_total_disengagements = 5328;
inline constexpr long long k_analyzed_disengagements = 5324;  ///< 8 analyzed manufacturers
inline constexpr long long k_total_accidents = 42;
inline constexpr double k_total_miles = 1116605.0;
inline constexpr int k_total_cars = 144;
/// Total miles / total disengagements. The paper's prose quotes "an
/// average of 262 autonomous miles driven per disengagement" via a per-car/
/// per-manufacturer aggregation it does not fully specify; its own Table I
/// totals give 1,116,605 / 5,328 = 209.6, which is the reproducible
/// definition used here. The quoted figure is kept for the record.
inline constexpr double k_miles_per_disengagement = 209.6;
inline constexpr double k_paper_quoted_miles_per_disengagement = 262.0;
inline constexpr double k_disengagements_per_accident = 127.0;

// --------------------------------------------------------------- Table IV

/// Root-cause category mix (fractions, not percents).
struct category_mix {
  manufacturer maker;
  double planner_controller = 0;       ///< ML/Design: planning & control
  double perception_recognition = 0;   ///< ML/Design: perception
  double system = 0;
  double unknown = 0;
};

/// The five manufacturers Table IV reports.
std::span<const category_mix> table4();

/// Generation mixes for ALL eight analyzed manufacturers: Table IV values
/// where published, calibrated plausible values for Benz / Bosch /
/// GM Cruise (chosen so the corpus-wide ML share lands at the paper's 64%).
std::span<const category_mix> generation_category_mix();

const category_mix& generation_mix_for(manufacturer maker);

/// Paper-level aggregates (§V-A2).
inline constexpr double k_ml_fraction = 0.64;
inline constexpr double k_perception_fraction = 0.44;
inline constexpr double k_planner_fraction = 0.20;
inline constexpr double k_system_fraction = 0.336;

// ---------------------------------------------------------------- Table V

/// Modality mix (fractions).
struct modality_mix {
  manufacturer maker;
  double automatic = 0;
  double manual = 0;
  double planned = 0;
};

/// The seven manufacturers Table V reports.
std::span<const modality_mix> table5();

/// Generation mixes for all eight analyzed manufacturers (Delphi, absent
/// from Table V, generates 50/50 automatic/manual).
std::span<const modality_mix> generation_modality_mix();

const modality_mix& generation_modality_for(manufacturer maker);

// --------------------------------------------------------------- Table VI

struct accident_row {
  manufacturer maker;
  long long accidents = 0;
  double fraction_of_total = 0;            ///< percent / 100
  std::optional<double> dpa;               ///< disengagements per accident
};

std::span<const accident_row> table6();

// -------------------------------------------------------------- Table VII

struct reliability_row {
  manufacturer maker;
  double median_dpm = 0;                    ///< per mile
  std::optional<double> median_apm;         ///< per mile
  std::optional<double> relative_to_human;  ///< APM / human APM
};

std::span<const reliability_row> table7();

inline constexpr double k_human_apm = 2e-6;  ///< NHTSA/FHWA: 1 per 500k miles

// ------------------------------------------------------------- Table VIII

struct mission_row {
  manufacturer maker;
  double apmi = 0;                ///< accidents per mission
  double vs_airline = 0;          ///< APMi / airline APM
  double vs_surgical_robot = 0;   ///< APMi / surgical-robot APM
};

std::span<const mission_row> table8();

inline constexpr double k_airline_apm = 9.8e-5;        ///< NTSB per departure
inline constexpr double k_surgical_robot_apm = 1.04e-2;///< FDA MAUDE per procedure
inline constexpr double k_median_trip_miles = 10.0;    ///< FHWA household survey

// ------------------------------------------------ Figures 8 / 10 / 11 / 12

inline constexpr double k_fig8_pearson_r = -0.87;
inline constexpr double k_mean_reaction_time_s = 0.85;   ///< §V-A4
inline constexpr double k_nonav_brake_reaction_s = 0.82; ///< Fambro et al.
inline constexpr double k_nonav_owner_reaction_s = 1.09; ///< 0.82 + 0.27
inline constexpr double k_fig12_low_speed_fraction = 0.80;  ///< accidents with rel. speed < 10 mph
inline constexpr double k_fig12_low_speed_mph = 10.0;

/// Reaction-time correlations with cumulative miles (§V-A4).
inline constexpr double k_waymo_reaction_corr = 0.19;
inline constexpr double k_benz_reaction_corr = 0.11;

// -------------------------------------------------- Generation calibration

/// Reporting period for each DMV release.
struct report_period {
  int report_year;
  year_month first;
  year_month last;
};
report_period period_for_release(int report_year);

/// Per-(manufacturer, release) generation plan beyond Table I: fleet size
/// to simulate when the report omits it, active month span, DPM-decay
/// exponent (how fast DPM falls with cumulative miles; drives Figs. 5/8/9),
/// and the reaction-time distribution (exponentiated-Weibull parameters).
struct generation_plan {
  manufacturer maker;
  int report_year;
  int cars = 0;                 ///< simulated fleet size
  year_month first_month;
  year_month last_month;
  double dpm_decay = 0.0;       ///< beta in weight ~ miles^alpha * cum^beta (beta <= 0)
  bool reports_reaction_time = false;
  double rt_shape = 1.5;        ///< exponentiated-Weibull shape
  double rt_scale = 0.8;        ///< scale (seconds)
  double rt_power = 1.0;        ///< exponentiation power
  bool reports_road_weather = false;
  bool vague_descriptions = false;  ///< Tesla-style uninformative causes
  /// alpha in the event weight miles^alpha * cum^beta: 1.0 spreads events
  /// proportionally to miles; < 1 concentrates DPM on low-mileage cars
  /// (GM Cruise's per-car DPM spread in Fig. 4 needs this).
  double event_miles_exponent = 1.0;
  /// Lognormal sigma of per-car mileage share: 0.35 keeps fleets fairly
  /// even; large values create workhorse-plus-stragglers fleets.
  double mileage_sigma = 0.35;
};

std::span<const generation_plan> generation_plans();
const generation_plan& plan_for(manufacturer maker, int report_year);
bool has_plan_for(manufacturer maker, int report_year);

}  // namespace avtk::dataset::ground_truth
