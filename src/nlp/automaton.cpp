#include "nlp/automaton.h"

#include <deque>
#include <map>

namespace avtk::nlp {

namespace {

// Trie node used only during construction; flattened to the dense table
// before the constructor returns. An ordered map keeps the build (and the
// BFS order) deterministic, which keeps state numbering deterministic.
struct trie_node {
  std::map<std::uint32_t, std::uint32_t> edges;  ///< stem id -> state
  std::vector<std::uint32_t> ends;               ///< phrases ending here
  std::uint32_t fail = 0;
};

}  // namespace

phrase_automaton::phrase_automaton(const failure_dictionary& dictionary,
                                   stem_interner& interner) {
  // Pass 1: intern every phrase stem and lay out the global phrase table in
  // the dictionary's own (tag, phrase index) order.
  std::vector<std::vector<std::uint32_t>> phrase_ids;
  for (const auto tag : dictionary.tags()) {
    const auto& phrases = dictionary.phrases(tag);
    tag_block block;
    block.tag = tag;
    block.first = static_cast<std::uint32_t>(phrases_.size());
    block.count = static_cast<std::uint32_t>(phrases.size());
    blocks_.push_back(block);
    for (std::uint32_t i = 0; i < phrases.size(); ++i) {
      phrase_info info;
      info.tag = tag;
      info.index_in_tag = i;
      info.weight = phrases[i].weight;
      phrases_.push_back(info);
      std::vector<std::uint32_t> ids;
      ids.reserve(phrases[i].stems.size());
      for (const auto& stem : phrases[i].stems) ids.push_back(interner.intern(stem));
      phrase_ids.push_back(std::move(ids));
    }
  }
  alphabet_ = static_cast<std::uint32_t>(interner.size());

  // Pass 2: build the goto trie. Shared prefixes share states; a phrase
  // that is a prefix of another terminates mid-path and adds no state.
  std::vector<trie_node> trie(1);
  for (std::uint32_t pid = 0; pid < phrase_ids.size(); ++pid) {
    std::uint32_t state = 0;
    for (const auto id : phrase_ids[pid]) {
      const auto [it, inserted] =
          trie[state].edges.emplace(id, static_cast<std::uint32_t>(trie.size()));
      if (inserted) trie.emplace_back();
      state = it->second;
    }
    trie[state].ends.push_back(pid);
  }
  state_count_ = trie.size();

  // Pass 3: BFS failure links, resolved directly into a dense transition
  // table (goto where defined, failure transition otherwise), and
  // suffix-closed output lists so matching never chases failure chains.
  next_.assign(state_count_ * alphabet_, 0);
  std::deque<std::uint32_t> queue;
  for (const auto& [id, child] : trie[0].edges) {
    next_[id] = child;
    queue.push_back(child);
  }
  std::vector<std::vector<std::uint32_t>> outputs(state_count_);
  outputs[0] = trie[0].ends;  // only non-empty for empty phrases, which the
                              // dictionary rejects at add_phrase time
  while (!queue.empty()) {
    const auto state = queue.front();
    queue.pop_front();
    const auto fail = trie[state].fail;
    outputs[state] = trie[state].ends;
    outputs[state].insert(outputs[state].end(), outputs[fail].begin(), outputs[fail].end());
    // Start from the failure state's fully resolved row, then overwrite
    // with this state's own goto edges.
    for (std::uint32_t c = 0; c < alphabet_; ++c) {
      next_[state * alphabet_ + c] = next_[fail * alphabet_ + c];
    }
    for (const auto& [id, child] : trie[state].edges) {
      trie[child].fail = next_[fail * alphabet_ + id];
      next_[state * alphabet_ + id] = child;
      queue.push_back(child);
    }
  }

  out_first_.assign(state_count_ + 1, 0);
  for (std::size_t s = 0; s < state_count_; ++s) {
    out_first_[s + 1] = out_first_[s] + static_cast<std::uint32_t>(outputs[s].size());
  }
  out_ids_.reserve(out_first_.back());
  for (const auto& out : outputs) out_ids_.insert(out_ids_.end(), out.begin(), out.end());
}

void phrase_automaton::count_matches(std::span<const std::uint32_t> stems,
                                     std::span<std::size_t> counts) const {
  std::uint32_t state = 0;
  for (const auto id : stems) {
    state = step(state, id);
    for (auto i = out_first_[state]; i < out_first_[state + 1]; ++i) {
      ++counts[out_ids_[i]];
    }
  }
}

}  // namespace avtk::nlp
