// avtk/nlp/dictionary.h
//
// The "Failure Dictionary" of Fig. 1 / Section IV: for each fault tag, a
// set of keyword phrases extracted from raw disengagement logs. Phrases are
// stored stemmed so the classifier is robust to inflection. The dictionary
// can be built in code, extended incrementally (the paper's "several passes
// over the dataset"), and serialized to a simple text format for audit —
// mirroring the authors' manual verification step.
#pragma once

#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "nlp/ontology.h"

namespace avtk::nlp {

/// One dictionary entry: a stemmed phrase (1..n tokens) voting for a tag
/// with a weight (longer, more specific phrases get higher weights).
struct dictionary_phrase {
  std::vector<std::string> stems;  ///< stemmed, stopword-free tokens in order
  double weight = 1.0;

  bool operator==(const dictionary_phrase&) const = default;
};

/// The failure dictionary: tag -> phrases.
class failure_dictionary {
 public:
  failure_dictionary() = default;

  /// Adds a raw phrase for `tag`; it is tokenized, stopword-filtered and
  /// stemmed. Empty phrases (all stop words) are rejected with
  /// avtk::logic_error. Weight defaults to the phrase's stemmed length.
  void add_phrase(fault_tag tag, std::string_view raw_phrase, double weight = 0.0);

  /// All phrases registered for `tag` (empty vector when none).
  const std::vector<dictionary_phrase>& phrases(fault_tag tag) const;

  /// Tags that have at least one phrase.
  std::vector<fault_tag> tags() const;

  std::size_t phrase_count() const;

  /// Serializes to a line-oriented format: `tag_id<TAB>weight<TAB>stems...`.
  std::string serialize() const;

  /// Parses the `serialize` format; throws avtk::parse_error on bad input.
  static failure_dictionary deserialize(std::string_view text);

  /// The built-in dictionary distilled from the phrase vocabulary observed
  /// in the DMV logs (Table II/III examples and the report templates). This
  /// is the dictionary every pipeline run starts from.
  static failure_dictionary builtin();

 private:
  std::map<fault_tag, std::vector<dictionary_phrase>> by_tag_;
};

}  // namespace avtk::nlp
