// avtk/nlp/evaluation.h
//
// Classifier quality measurement: confusion matrix over fault tags plus the
// per-tag precision / recall / F1 summary used to validate Stage III (the
// paper verified its dictionary manually; we measure it).
#pragma once

#include <map>
#include <string>
#include <vector>

#include "nlp/bootstrap.h"
#include "nlp/classifier.h"
#include "nlp/ontology.h"

namespace avtk::nlp {

/// Counts of (truth, predicted) pairs.
class confusion_matrix {
 public:
  void add(fault_tag truth, fault_tag predicted);

  long long count(fault_tag truth, fault_tag predicted) const;
  long long total() const { return total_; }

  /// Micro accuracy: trace / total.
  double accuracy() const;

  /// Per-tag one-vs-rest metrics. Tags never seen as truth or prediction
  /// report zeros.
  struct tag_metrics {
    fault_tag tag = fault_tag::unknown;
    long long support = 0;   ///< truth occurrences
    double precision = 0;
    double recall = 0;
    double f1 = 0;
  };
  tag_metrics metrics_for(fault_tag tag) const;
  std::vector<tag_metrics> all_metrics() const;  ///< tags with support > 0

  /// Macro-averaged F1 over tags with support.
  double macro_f1() const;

  std::string render() const;

 private:
  std::map<std::pair<fault_tag, fault_tag>, long long> cells_;
  std::map<fault_tag, long long> truth_totals_;
  std::map<fault_tag, long long> predicted_totals_;
  long long total_ = 0;
};

/// Runs `classifier` over a labeled corpus and returns the confusion matrix.
confusion_matrix evaluate_classifier(const keyword_voting_classifier& classifier,
                                     const std::vector<labeled_description>& corpus);

}  // namespace avtk::nlp
