// avtk/nlp/interner.h
//
// Stem interner for the Stage-III labeling hot path: a symbol table
// mapping stem strings to dense uint32_t ids, shared by the failure
// dictionary and the tokenizer so phrase matching compares integers
// instead of strings. Ids are assigned in first-intern order, so a
// dictionary always interns to the same ids regardless of the corpus
// later classified against it (determinism is tested).
//
// The intended lifecycle is build-then-freeze: the phrase automaton
// interns every dictionary stem at construction, after which the interner
// is only read (`find`, `spelling`) — all const members, safe to share
// across threads without locking.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace avtk::nlp {

class stem_interner {
 public:
  /// Sentinel for "not an interned stem". Descriptions routinely contain
  /// stems outside the dictionary vocabulary; they all map to npos, which
  /// by construction can never match a phrase token.
  static constexpr std::uint32_t npos = 0xffffffffu;

  stem_interner() = default;

  /// Id for `stem`, interning it on first sight. Ids are dense: the n-th
  /// distinct stem gets id n-1.
  std::uint32_t intern(std::string_view stem);

  /// Id for `stem` or npos when it was never interned. Read-only: never
  /// allocates, safe for concurrent use once the table is frozen.
  std::uint32_t find(std::string_view stem) const;

  /// The spelling behind an id (valid for ids returned by intern/find).
  std::string_view spelling(std::uint32_t id) const { return spellings_[id]; }

  /// Number of distinct interned stems == the automaton's alphabet size.
  std::size_t size() const { return spellings_.size(); }

  /// Identity of this interner's current stem→id mapping. Changes every
  /// time a new stem is interned and is unique across all interner
  /// instances that ever assigned ids, so a token_scratch memo built
  /// against one mapping can never be mistaken for another's (classify
  /// uses thread_local scratch shared across classifier instances).
  std::uint64_t generation() const { return generation_; }

  // Heterogeneous lookup (C++20 transparent hash) so find(string_view)
  // never materializes a std::string on the classify hot path.
  struct sv_hash {
    using is_transparent = void;
    std::size_t operator()(std::string_view s) const noexcept {
      return std::hash<std::string_view>{}(s);
    }
  };

 private:
  static std::uint64_t next_generation();

  std::unordered_map<std::string, std::uint32_t, sv_hash, std::equal_to<>> ids_;
  std::vector<std::string> spellings_;
  std::uint64_t generation_ = 0;  ///< 0 = empty mapping (memo-compatible)
};

/// Reusable per-caller scratch for the fused token pass. One instance per
/// thread; reusing it across calls makes the pass allocation-free once the
/// buffers have warmed up. The memo caches the full
/// stopword-check + stem + intern result per distinct lower-cased token,
/// so corpora with a bounded vocabulary (every real one) pay the Porter
/// stemmer once per word, not once per occurrence. Stemming is a pure
/// function, so the memo never changes the emitted id sequence.
struct token_scratch {
  /// Memo value for "token is a stop word / boilerplate: emit nothing".
  /// Distinct from stem_interner::npos, which IS emitted (an
  /// out-of-vocabulary stem still occupies a position and breaks phrase
  /// adjacency).
  static constexpr std::uint32_t skip = 0xfffffffeu;
  /// Memo growth cap: past this many distinct tokens (pathological,
  /// e.g. unbounded OCR noise) new tokens are resolved but not cached.
  static constexpr std::size_t memo_cap = 1u << 16;

  std::string word;      ///< lower-cased token being resolved
  std::string stem_buf;  ///< stemming workspace (keeps `word` as memo key)
  std::unordered_map<std::string, std::uint32_t, stem_interner::sv_hash, std::equal_to<>> memo;
  std::uint64_t memo_generation = 0;  ///< interner generation the memo was built against
};

/// The fused Stage-III token pass: tokenize `text`, drop stop words and
/// log boilerplate, stem, and map each stem to its interned id (npos for
/// stems outside the interner's vocabulary). Appends to `out` after
/// clearing it. Produces ids for exactly the stem sequence
/// stem_all(remove_stopwords(tokenize_words(text))) yields — the
/// equivalence the naive/automaton differential suite pins down.
void interned_stem_ids(std::string_view text, const stem_interner& interner,
                       std::vector<std::uint32_t>& out, token_scratch& scratch);

}  // namespace avtk::nlp
