// avtk/nlp/bootstrap.h
//
// Automatic dictionary induction: given a labeled corpus of (description,
// tag) pairs, mine per-tag n-grams and keep the ones that are both frequent
// within the tag and discriminative against every other tag — the
// mechanized version of the paper's manual "several passes over the
// dataset" dictionary construction.
#pragma once

#include <string>
#include <vector>

#include "nlp/dictionary.h"
#include "nlp/ontology.h"

namespace avtk::nlp {

/// One labeled training example.
struct labeled_description {
  std::string text;
  fault_tag tag = fault_tag::unknown;
};

struct bootstrap_config {
  std::size_t min_ngram = 1;
  std::size_t max_ngram = 3;
  std::size_t min_count = 3;          ///< phrase must appear this often in its tag
  double min_precision = 0.90;        ///< share of the phrase's occurrences in its tag
  std::size_t max_phrases_per_tag = 25;
};

/// Induces a dictionary from labeled examples. Examples tagged `unknown`
/// contribute only as negative evidence (phrases common in unknown text are
/// rejected by the precision filter).
failure_dictionary bootstrap_dictionary(const std::vector<labeled_description>& corpus,
                                        const bootstrap_config& config = {});

/// Classifier accuracy of `dictionary` against labeled data (fraction of
/// examples whose predicted tag equals the label).
double evaluate_dictionary(const failure_dictionary& dictionary,
                           const std::vector<labeled_description>& corpus);

}  // namespace avtk::nlp
