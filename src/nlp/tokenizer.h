// avtk/nlp/tokenizer.h
//
// Word tokenizer for disengagement-log text: lower-cases, splits on
// non-alphanumerics, keeps intra-word hyphens/slashes split apart
// ("decision-and-control" -> decision, and, control), and preserves
// number tokens (useful for reaction-time extraction).
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace avtk::nlp {

/// One token with its byte offset into the original text.
struct token {
  std::string text;        ///< lower-cased token
  std::size_t offset = 0;  ///< byte offset of the first character
  bool is_number = false;  ///< token is all digits / decimal point

  bool operator==(const token&) const = default;
};

/// Tokenizes `text`; never returns empty tokens.
std::vector<token> tokenize(std::string_view text);

/// Convenience: just the token strings.
std::vector<std::string> tokenize_words(std::string_view text);

/// Zero-allocation scan primitive behind tokenize(): returns the next raw
/// (not yet lower-cased) token at or after `pos` as a view into `text`,
/// advancing `pos` past it; an empty view means the text is exhausted.
/// tokenize() and the interned-id fast path share these exact boundaries.
std::string_view next_token_view(std::string_view text, std::size_t& pos);

}  // namespace avtk::nlp
