#include "nlp/dictionary.h"

#include "nlp/stemmer.h"
#include "util/table.h"
#include "nlp/stopwords.h"
#include "nlp/tokenizer.h"
#include "util/errors.h"
#include "util/strings.h"

namespace avtk::nlp {

void failure_dictionary::add_phrase(fault_tag tag, std::string_view raw_phrase, double weight) {
  auto words = tokenize_words(raw_phrase);
  words = remove_stopwords(words);
  auto stems = stem_all(words);
  if (stems.empty()) {
    throw logic_error("dictionary phrase '" + std::string(raw_phrase) +
                      "' is empty after stopword removal");
  }
  dictionary_phrase p;
  p.weight = weight > 0 ? weight : static_cast<double>(stems.size());
  p.stems = std::move(stems);
  by_tag_[tag].push_back(std::move(p));
}

const std::vector<dictionary_phrase>& failure_dictionary::phrases(fault_tag tag) const {
  static const std::vector<dictionary_phrase> empty;
  const auto it = by_tag_.find(tag);
  return it == by_tag_.end() ? empty : it->second;
}

std::vector<fault_tag> failure_dictionary::tags() const {
  std::vector<fault_tag> out;
  out.reserve(by_tag_.size());
  for (const auto& [tag, phrases] : by_tag_) {
    if (!phrases.empty()) out.push_back(tag);
  }
  return out;
}

std::size_t failure_dictionary::phrase_count() const {
  std::size_t n = 0;
  for (const auto& [tag, phrases] : by_tag_) n += phrases.size();
  return n;
}

std::string failure_dictionary::serialize() const {
  std::string out;
  for (const auto& [tag, phrases] : by_tag_) {
    for (const auto& p : phrases) {
      out += tag_id(tag);
      out += '\t';
      out += format_number(p.weight, 10);
      out += '\t';
      for (std::size_t i = 0; i < p.stems.size(); ++i) {
        if (i > 0) out += ' ';
        out += p.stems[i];
      }
      out += '\n';
    }
  }
  return out;
}

failure_dictionary failure_dictionary::deserialize(std::string_view text) {
  failure_dictionary dict;
  for (const auto& line : str::split(text, '\n')) {
    const auto trimmed = str::trim(line);
    if (trimmed.empty() || trimmed.front() == '#') continue;
    const auto fields = str::split(trimmed, '\t');
    if (fields.size() != 3) throw parse_error("dictionary line needs 3 tab fields: " + std::string(line));
    const auto tag = tag_from_string(fields[0]);
    if (!tag) throw parse_error("unknown dictionary tag: " + fields[0]);
    const auto weight = str::parse_double(fields[1]);
    if (!weight || !(*weight > 0)) throw parse_error("bad dictionary weight: " + fields[1]);
    dictionary_phrase p;
    p.weight = *weight;
    p.stems = str::split_whitespace(fields[2]);
    if (p.stems.empty()) throw parse_error("empty dictionary phrase");
    dict.by_tag_[*tag].push_back(std::move(p));
  }
  return dict;
}

failure_dictionary failure_dictionary::builtin() {
  failure_dictionary d;

  // Environment: sudden external changes (Table III) — construction,
  // emergency vehicles, weather, other road users behaving erratically.
  for (const char* p : {"recklessly behaving road user", "construction zone",
                        "emergency vehicle", "heavy rain", "sun glare", "bad weather",
                        "road debris", "erratic pedestrian", "jaywalking pedestrian",
                        "cyclist swerved", "accident ahead", "lane closure"}) {
    d.add_phrase(fault_tag::environment, p);
  }

  // Computer system: hardware-platform problems.
  for (const char* p : {"processor overload", "cpu load", "compute platform",
                        "memory exhaustion", "gpu fault", "hardware fault",
                        "compute unit failure", "system resource exhaustion",
                        "processor fault", "overheating compute"}) {
    d.add_phrase(fault_tag::computer_system, p);
  }

  // Recognition system: perception failures.
  for (const char* p : {"did not see", "didn't see", "failed to detect", "lane marking",
                        "traffic light detection", "perception system", "recognition system",
                        "misdetected obstacle", "failed to classify", "object detection",
                        "failed to recognize", "false obstacle", "missed detection",
                        "stop sign detection", "incorrect detection"}) {
    d.add_phrase(fault_tag::recognition_system, p);
  }

  // Planner: motion-planning and anticipation failures.
  for (const char* p : {"motion planning", "improper motion plan", "trajectory planning",
                        "planner failed", "infeasible path", "path planning",
                        "failed to anticipate", "planning error", "unwanted maneuver",
                        "uncomfortable maneuver"}) {
    d.add_phrase(fault_tag::planner, p);
  }

  // Sensor: sensing-hardware failures.
  for (const char* p : {"failed to localize", "localization failure", "lidar dropout",
                        "radar malfunction", "gps signal lost", "camera blackout",
                        "sensor malfunction", "sensor data corruption", "calibration drift",
                        "sensor reading invalid"}) {
    d.add_phrase(fault_tag::sensor, p);
  }

  // Network: data-transport problems.
  for (const char* p : {"data rate too high", "network latency", "can bus overload",
                        "communication timeout", "network failure", "message loss on bus",
                        "bandwidth exceeded", "dropped network packets"}) {
    d.add_phrase(fault_tag::network, p);
  }

  // Design bug: situations outside the designed envelope.
  for (const char* p : {"not designed to handle", "unforeseen situation",
                        "outside operational design domain", "design limitation",
                        "unexpected scenario", "unhandled corner case",
                        "scenario beyond system capability"}) {
    d.add_phrase(fault_tag::design_bug, p);
  }

  // Software: hangs, crashes, logic bugs in the software stack.
  for (const char* p : {"software module froze", "software crash", "software hang",
                        "software bug", "process crashed", "application error",
                        "software fault", "invalid output from software", "module restart",
                        "software exception"}) {
    d.add_phrase(fault_tag::software, p);
  }

  // AV Controller (System): the follower/actuation chain not responding.
  for (const char* p : {"controller did not respond", "controller unresponsive",
                        "command not executed", "actuation fault", "steering command ignored",
                        "throttle command ignored", "brake command ignored"}) {
    d.add_phrase(fault_tag::av_controller_system, p);
  }

  // AV Controller (ML/Design): the controller deciding wrongly.
  for (const char* p : {"wrong decision", "incorrect decision", "poor decision",
                        "wrong action chosen", "controller decision error",
                        "untimely decision"}) {
    d.add_phrase(fault_tag::av_controller_ml, p);
  }

  // Hang/Crash: watchdog-detected stalls (Volkswagen's "watchdog error").
  for (const char* p : {"watchdog error", "watchdog timer", "watchdog timeout",
                        "watchdog reset"}) {
    d.add_phrase(fault_tag::hang_crash, p);
  }

  // Incorrect behavior prediction: mispredicting other road users.
  for (const char* p : {"incorrect behavior prediction", "behavior prediction",
                        "failed to predict behavior", "prediction error",
                        "mispredicted vehicle", "incorrect prediction"}) {
    d.add_phrase(fault_tag::incorrect_behavior_prediction, p);
  }

  return d;
}

}  // namespace avtk::nlp
