#include "nlp/ontology.h"

#include "util/errors.h"
#include "util/strings.h"

namespace avtk::nlp {

std::string_view tag_name(fault_tag tag) {
  switch (tag) {
    case fault_tag::environment: return "Environment";
    case fault_tag::computer_system: return "Computer System";
    case fault_tag::recognition_system: return "Recognition System";
    case fault_tag::planner: return "Planner";
    case fault_tag::sensor: return "Sensor";
    case fault_tag::network: return "Network";
    case fault_tag::design_bug: return "Design Bug";
    case fault_tag::software: return "Software";
    case fault_tag::av_controller_system: return "AV Controller";
    case fault_tag::av_controller_ml: return "AV Controller";
    case fault_tag::hang_crash: return "Hang/Crash";
    case fault_tag::incorrect_behavior_prediction: return "Incorrect Behavior Prediction";
    case fault_tag::unknown: return "Unknown-T";
  }
  throw logic_error("unreachable fault_tag");
}

std::string_view tag_id(fault_tag tag) {
  switch (tag) {
    case fault_tag::environment: return "environment";
    case fault_tag::computer_system: return "computer_system";
    case fault_tag::recognition_system: return "recognition_system";
    case fault_tag::planner: return "planner";
    case fault_tag::sensor: return "sensor";
    case fault_tag::network: return "network";
    case fault_tag::design_bug: return "design_bug";
    case fault_tag::software: return "software";
    case fault_tag::av_controller_system: return "av_controller_system";
    case fault_tag::av_controller_ml: return "av_controller_ml";
    case fault_tag::hang_crash: return "hang_crash";
    case fault_tag::incorrect_behavior_prediction: return "incorrect_behavior_prediction";
    case fault_tag::unknown: return "unknown";
  }
  throw logic_error("unreachable fault_tag");
}

std::optional<fault_tag> tag_from_string(std::string_view s) {
  for (const auto tag : k_all_fault_tags) {
    if (str::iequals(s, tag_id(tag))) return tag;
  }
  // Display names; "AV Controller" is ambiguous between the two controller
  // tags — resolve to the System interpretation (Table III lists it first).
  for (const auto tag : k_all_fault_tags) {
    if (tag == fault_tag::av_controller_ml) continue;
    if (str::iequals(s, tag_name(tag))) return tag;
  }
  return std::nullopt;
}

failure_category category_of(fault_tag tag) {
  switch (tag) {
    case fault_tag::environment:
    case fault_tag::recognition_system:
    case fault_tag::planner:
    case fault_tag::design_bug:
    case fault_tag::av_controller_ml:
    case fault_tag::incorrect_behavior_prediction:
      return failure_category::ml_design;
    case fault_tag::computer_system:
    case fault_tag::sensor:
    case fault_tag::network:
    case fault_tag::software:
    case fault_tag::av_controller_system:
    case fault_tag::hang_crash:
      return failure_category::system;
    case fault_tag::unknown:
      return failure_category::unknown;
  }
  throw logic_error("unreachable fault_tag");
}

ml_subcategory ml_subcategory_of(fault_tag tag) {
  if (category_of(tag) != failure_category::ml_design) return ml_subcategory::not_ml;
  switch (tag) {
    case fault_tag::environment:
    case fault_tag::recognition_system:
      return ml_subcategory::perception_recognition;
    default:
      return ml_subcategory::planner_controller;
  }
}

stpa_component stpa_component_of(fault_tag tag) {
  switch (tag) {
    case fault_tag::sensor: return stpa_component::sensors;
    case fault_tag::environment:
    case fault_tag::recognition_system:
      return stpa_component::recognition;
    case fault_tag::planner:
    case fault_tag::design_bug:
    case fault_tag::av_controller_ml:
    case fault_tag::incorrect_behavior_prediction:
      return stpa_component::planner_controller;
    case fault_tag::av_controller_system:
      return stpa_component::follower_actuators;
    case fault_tag::network: return stpa_component::network;
    case fault_tag::computer_system:
    case fault_tag::software:
    case fault_tag::hang_crash:
      return stpa_component::planner_controller;
    case fault_tag::unknown: return stpa_component::unknown;
  }
  throw logic_error("unreachable fault_tag");
}

std::string_view category_name(failure_category c) {
  switch (c) {
    case failure_category::ml_design: return "ML/Design";
    case failure_category::system: return "System";
    case failure_category::unknown: return "Unknown-C";
  }
  throw logic_error("unreachable failure_category");
}

std::optional<failure_category> category_from_string(std::string_view s) {
  if (str::iequals(s, "ML/Design") || str::iequals(s, "ml_design")) {
    return failure_category::ml_design;
  }
  if (str::iequals(s, "System") || str::iequals(s, "system")) return failure_category::system;
  if (str::iequals(s, "Unknown-C") || str::iequals(s, "unknown")) {
    return failure_category::unknown;
  }
  return std::nullopt;
}

}  // namespace avtk::nlp
