// avtk/nlp/ontology.h
//
// The STPA-derived fault ontology of Table III: fault *tags* assigned to
// individual disengagement descriptions, and the failure *categories*
// (ML/Design vs. System vs. Unknown) they roll up into. The "AV Controller"
// tag is context-sensitive in the paper (System when the controller does
// not respond, ML/Design when it decides wrongly), so it appears here as
// two tags sharing a display name.
#pragma once

#include <array>
#include <optional>
#include <string>
#include <string_view>

namespace avtk::nlp {

/// Fault tags per Table III plus the Fig. 6 legend.
enum class fault_tag {
  environment,                    ///< construction zones, emergency vehicles, weather
  computer_system,                ///< processor overload etc.
  recognition_system,             ///< perception failed to recognize the scene
  planner,                        ///< failed to anticipate other drivers
  sensor,                         ///< sensor failed to localize in time
  network,                        ///< data rate exceeded network capacity
  design_bug,                     ///< unforeseen situation not designed for
  software,                       ///< hang, crash, software fault
  av_controller_system,           ///< controller did not respond to commands
  av_controller_ml,               ///< controller made wrong decisions/predictions
  hang_crash,                     ///< watchdog timer error
  incorrect_behavior_prediction,  ///< mispredicted another road user
  unknown,                        ///< "Unknown-T": no tag could be assigned
};

inline constexpr std::array<fault_tag, 13> k_all_fault_tags = {
    fault_tag::environment,
    fault_tag::computer_system,
    fault_tag::recognition_system,
    fault_tag::planner,
    fault_tag::sensor,
    fault_tag::network,
    fault_tag::design_bug,
    fault_tag::software,
    fault_tag::av_controller_system,
    fault_tag::av_controller_ml,
    fault_tag::hang_crash,
    fault_tag::incorrect_behavior_prediction,
    fault_tag::unknown,
};

/// Root failure categories (Table III / Table IV).
enum class failure_category {
  ml_design,  ///< machine-learning / design faults
  system,     ///< computing-system (hardware + software) faults
  unknown,    ///< "Unknown-C"
};

/// Finer split of ML/Design used by Table IV's two sub-columns.
enum class ml_subcategory {
  planner_controller,
  perception_recognition,
  not_ml,  ///< tag is not an ML/Design tag
};

/// STPA control-structure component a tag localizes to (Fig. 3).
enum class stpa_component {
  sensors,
  recognition,
  planner_controller,
  follower_actuators,
  mechanical,
  network,
  driver,
  unknown,
};

/// Display name as used in the paper ("Recognition System", "Hang/Crash").
std::string_view tag_name(fault_tag tag);

/// Stable machine identifier ("recognition_system").
std::string_view tag_id(fault_tag tag);

/// Parses either a display name or a machine id, case-insensitively.
std::optional<fault_tag> tag_from_string(std::string_view s);

/// Table III: category of each tag.
failure_category category_of(fault_tag tag);

/// Footnote-5 policy: Environment and Recognition System count as
/// perception; Planner, Incorrect Behavior Prediction, Design Bug and the
/// ML side of AV Controller count as planning/control.
ml_subcategory ml_subcategory_of(fault_tag tag);

/// Fig. 3: which control-structure component the tag localizes to.
stpa_component stpa_component_of(fault_tag tag);

std::string_view category_name(failure_category c);
std::optional<failure_category> category_from_string(std::string_view s);

}  // namespace avtk::nlp
