#include "nlp/bootstrap.h"

#include <algorithm>
#include <map>

#include "nlp/classifier.h"
#include "nlp/ngram.h"
#include "nlp/stemmer.h"
#include "nlp/stopwords.h"
#include "nlp/tokenizer.h"
#include "util/strings.h"
#include "util/table.h"

namespace avtk::nlp {

namespace {

std::vector<std::string> stems_of(const std::string& text) {
  auto words = tokenize_words(text);
  words = remove_stopwords(words);
  return stem_all(words);
}

struct scored_phrase {
  std::string phrase;     // space-joined stems
  std::size_t count = 0;
  std::size_t length = 0;
  double precision = 0;

  double score() const {
    return static_cast<double>(count) * static_cast<double>(length) * precision;
  }
};

}  // namespace

failure_dictionary bootstrap_dictionary(const std::vector<labeled_description>& corpus,
                                        const bootstrap_config& config) {
  // Per-tag and global n-gram counts over stemmed, stopword-free text.
  std::map<fault_tag, std::map<std::string, std::size_t>> per_tag;
  std::map<std::string, std::size_t> global;
  for (const auto& example : corpus) {
    const auto stems = stems_of(example.text);
    for (std::size_t n = config.min_ngram; n <= config.max_ngram; ++n) {
      for (auto& g : ngrams(stems, n)) {
        ++global[g];
        ++per_tag[example.tag][g];
      }
    }
  }

  // Candidate phrases are already stemmed, so the dictionary is assembled
  // through the serialize format (add_phrase would stem a second time).
  std::string serialized;
  for (const auto& [tag, counts] : per_tag) {
    if (tag == fault_tag::unknown) continue;  // negative evidence only

    std::vector<scored_phrase> candidates;
    for (const auto& [phrase, count] : counts) {
      if (count < config.min_count) continue;
      const double precision =
          static_cast<double>(count) / static_cast<double>(global.at(phrase));
      if (precision < config.min_precision) continue;
      candidates.push_back(
          {phrase, count, str::split_whitespace(phrase).size(), precision});
    }
    std::sort(candidates.begin(), candidates.end(),
              [](const scored_phrase& a, const scored_phrase& b) {
                if (a.score() != b.score()) return a.score() > b.score();
                return a.phrase < b.phrase;
              });

    std::vector<std::string> kept;
    for (const auto& c : candidates) {
      if (kept.size() >= config.max_phrases_per_tag) break;
      // Skip phrases subsumed by an already-kept longer phrase: they would
      // add votes without adding signal.
      bool subsumed = false;
      for (const auto& k : kept) {
        if (k.size() > c.phrase.size() && str::contains(k, c.phrase)) {
          subsumed = true;
          break;
        }
      }
      if (subsumed) continue;
      kept.push_back(c.phrase);
      const double weight = static_cast<double>(c.length) * c.precision;
      serialized += std::string(tag_id(tag)) + "\t" + format_number(weight, 10) + "\t" +
                    c.phrase + "\n";
    }
  }
  return failure_dictionary::deserialize(serialized);
}

double evaluate_dictionary(const failure_dictionary& dictionary,
                           const std::vector<labeled_description>& corpus) {
  if (corpus.empty()) return 0.0;
  const keyword_voting_classifier cls(dictionary);
  std::size_t correct = 0;
  for (const auto& example : corpus) {
    if (cls.classify(example.text).tag == example.tag) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(corpus.size());
}

}  // namespace avtk::nlp
