#include "nlp/stemmer.h"

#include <array>
#include <utility>

namespace avtk::nlp {

namespace {

// The Porter algorithm operates on a mutable buffer b[0..k]. Indices are
// signed: j can legitimately reach -1 (empty stem). The buffer is borrowed
// from the caller and truncated in place, so repeated stemming through one
// scratch string never allocates.
class porter {
 public:
  explicit porter(std::string& word) : b_(word), k_(static_cast<int>(b_.size()) - 1) {}

  void run() {
    step1ab();
    step1c();
    step2();
    step3();
    step4();
    step5();
    b_.resize(static_cast<std::size_t>(k_ + 1));
  }

 private:
  std::string& b_;
  int k_ = -1;  // index of last character of the current stem
  int j_ = -1;  // general offset set by ends()

  char at(int i) const { return b_[static_cast<std::size_t>(i)]; }

  bool is_consonant(int i) const {
    switch (at(i)) {
      case 'a': case 'e': case 'i': case 'o': case 'u':
        return false;
      case 'y':
        return i == 0 ? true : !is_consonant(i - 1);
      default:
        return true;
    }
  }

  // Measure of the stem b[0..j]: number of VC sequences.
  int measure() const {
    int n = 0;
    int i = 0;
    while (true) {
      if (i > j_) return n;
      if (!is_consonant(i)) break;
      ++i;
    }
    ++i;
    while (true) {
      while (true) {
        if (i > j_) return n;
        if (is_consonant(i)) break;
        ++i;
      }
      ++i;
      ++n;
      while (true) {
        if (i > j_) return n;
        if (!is_consonant(i)) break;
        ++i;
      }
      ++i;
    }
  }

  bool vowel_in_stem() const {
    for (int i = 0; i <= j_; ++i) {
      if (!is_consonant(i)) return true;
    }
    return false;
  }

  bool double_consonant(int i) const {
    if (i < 1) return false;
    if (at(i) != at(i - 1)) return false;
    return is_consonant(i);
  }

  // cvc(i) — stem ends consonant-vowel-consonant and the final consonant is
  // not w, x or y; restores an 'e' in words like cav(e), lov(e).
  bool cvc(int i) const {
    if (i < 2 || !is_consonant(i) || is_consonant(i - 1) || !is_consonant(i - 2)) return false;
    const char c = at(i);
    return c != 'w' && c != 'x' && c != 'y';
  }

  bool ends(std::string_view s) {
    const int len = static_cast<int>(s.size());
    if (len > k_ + 1) return false;
    if (b_.compare(static_cast<std::size_t>(k_ + 1 - len), s.size(), s) != 0) return false;
    j_ = k_ - len;
    return true;
  }

  void set_to(std::string_view s) {
    b_.replace(static_cast<std::size_t>(j_ + 1), static_cast<std::size_t>(k_ - j_), s);
    k_ = j_ + static_cast<int>(s.size());
  }

  void replace_if_measure(std::string_view s) {
    if (measure() > 0) set_to(s);
  }

  void step1ab() {
    if (at(k_) == 's') {
      if (ends("sses")) {
        k_ -= 2;
      } else if (ends("ies")) {
        set_to("i");
      } else if (k_ >= 1 && at(k_ - 1) != 's') {
        --k_;
      }
    }
    if (ends("eed")) {
      if (measure() > 0) --k_;
    } else if ((ends("ed") || ends("ing")) && vowel_in_stem()) {
      k_ = j_;
      if (ends("at")) {
        set_to("ate");
      } else if (ends("bl")) {
        set_to("ble");
      } else if (ends("iz")) {
        set_to("ize");
      } else if (double_consonant(k_)) {
        const char c = at(k_);
        if (c != 'l' && c != 's' && c != 'z') --k_;
      } else if (measure() == 1 && cvc(k_)) {
        j_ = k_;
        set_to("e");
      }
    }
  }

  void step1c() {
    if (k_ >= 0 && ends("y") && vowel_in_stem()) b_[static_cast<std::size_t>(k_)] = 'i';
  }

  void step2() {
    if (k_ < 0) return;
    static constexpr std::array<std::pair<std::string_view, std::string_view>, 20> rules = {{
        {"ational", "ate"}, {"tional", "tion"}, {"enci", "ence"}, {"anci", "ance"},
        {"izer", "ize"},    {"abli", "able"},   {"alli", "al"},   {"entli", "ent"},
        {"eli", "e"},       {"ousli", "ous"},   {"ization", "ize"}, {"ation", "ate"},
        {"ator", "ate"},    {"alism", "al"},    {"iveness", "ive"}, {"fulness", "ful"},
        {"ousness", "ous"}, {"aliti", "al"},    {"iviti", "ive"},   {"biliti", "ble"},
    }};
    for (const auto& [suffix, repl] : rules) {
      if (ends(suffix)) {
        replace_if_measure(repl);
        return;
      }
    }
  }

  void step3() {
    if (k_ < 0) return;
    static constexpr std::array<std::pair<std::string_view, std::string_view>, 7> rules = {{
        {"icate", "ic"}, {"ative", ""}, {"alize", "al"}, {"iciti", "ic"},
        {"ical", "ic"},  {"ful", ""},   {"ness", ""},
    }};
    for (const auto& [suffix, repl] : rules) {
      if (ends(suffix)) {
        replace_if_measure(repl);
        return;
      }
    }
  }

  void step4() {
    if (k_ < 0) return;
    static constexpr std::array<std::string_view, 19> suffixes = {
        "al",    "ance", "ence", "er",  "ic",  "able", "ible", "ant", "ement", "ment",
        "ent",   "ou",   "ism",  "ate", "iti", "ous",  "ive",  "ize", "ion"};
    for (const auto suffix : suffixes) {
      if (ends(suffix)) {
        if (suffix == "ion") {
          // -ion only strips after s or t ("adoption", "decision").
          if (j_ >= 0 && (at(j_) == 's' || at(j_) == 't') && measure() > 1) k_ = j_;
          return;
        }
        if (measure() > 1) k_ = j_;
        return;
      }
    }
  }

  void step5() {
    if (k_ < 0) return;
    // 5a: drop a final e when the measure allows.
    j_ = k_;
    if (at(k_) == 'e') {
      const int m = measure();
      if (m > 1 || (m == 1 && !cvc(k_ - 1))) --k_;
    }
    if (k_ < 0) return;
    // 5b: -ll -> -l for m > 1.
    j_ = k_;
    if (at(k_) == 'l' && double_consonant(k_) && measure() > 1) --k_;
  }
};

}  // namespace

std::string stem(std::string_view word) {
  std::string out(word);
  stem_in_place(out);
  return out;
}

void stem_in_place(std::string& word) {
  if (word.size() < 3) return;
  porter(word).run();
}

std::vector<std::string> stem_all(const std::vector<std::string>& words) {
  std::vector<std::string> out;
  out.reserve(words.size());
  for (const auto& w : words) out.push_back(stem(w));
  return out;
}

}  // namespace avtk::nlp
