// avtk/nlp/classifier.h
//
// The keyword-voting classifier of Section IV: a disengagement description
// is tokenized, stopword-filtered and stemmed; every dictionary phrase that
// appears contiguously in the stemmed token stream casts a weighted vote
// for its tag; the highest-scoring tag wins. Descriptions matching no
// phrase are tagged "Unknown-T" and categorized "Unknown-C".
#pragma once

#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "nlp/dictionary.h"
#include "nlp/ontology.h"

namespace avtk::nlp {

/// The classifier's verdict for one description.
struct classification {
  fault_tag tag = fault_tag::unknown;
  failure_category category = failure_category::unknown;
  double score = 0.0;        ///< winning tag's total vote weight
  double runner_up = 0.0;    ///< second-best tag's weight (0 when none)
  double confidence = 0.0;   ///< (score - runner_up) / score; 0 for unknown
  std::vector<std::string> matched_phrases;  ///< stems of winning matches, joined by ' '
};

/// Scores for every tag (diagnostics / Fig. 6 style breakdowns).
using tag_scores = std::map<fault_tag, double>;

class keyword_voting_classifier {
 public:
  explicit keyword_voting_classifier(failure_dictionary dictionary);

  /// Classifies one free-text description.
  classification classify(std::string_view description) const;

  /// Raw per-tag vote totals for a description.
  tag_scores score_all(std::string_view description) const;

  const failure_dictionary& dictionary() const { return dictionary_; }

 private:
  /// Vote totals for an already tokenized/stemmed description.
  tag_scores score_stems(const std::vector<std::string>& stems) const;

  failure_dictionary dictionary_;
};

/// Counts contiguous occurrences of `phrase` in `stems`.
std::size_t count_phrase_matches(const std::vector<std::string>& stems,
                                 const std::vector<std::string>& phrase);

}  // namespace avtk::nlp
