// avtk/nlp/classifier.h
//
// The keyword-voting classifier of Section IV: a disengagement description
// is tokenized, stopword-filtered and stemmed; every dictionary phrase that
// appears contiguously in the stemmed token stream casts a weighted vote
// for its tag; the highest-scoring tag wins. Descriptions matching no
// phrase are tagged "Unknown-T" and categorized "Unknown-C".
//
// Two scorer backends produce bit-identical classifications (tag, category,
// score, runner_up, confidence, matched_phrases — tested differentially):
//
//   naive      the original per-phrase sliding-window scan,
//              O(stems x phrases x phrase_len) per description.
//   automaton  (default) one Aho-Corasick pass over the description's
//              interned stem ids; cost is independent of dictionary size.
//
// The automaton, its stem interner, and the dictionary are immutable after
// construction, so one classifier is safely shared read-only by any number
// of classify workers (classify_all fans out on that property).
#pragma once

#include <map>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "nlp/automaton.h"
#include "nlp/dictionary.h"
#include "nlp/interner.h"
#include "nlp/ontology.h"

namespace avtk::nlp {

/// Which Stage-III scorer runs (see the header comment).
enum class labeling_backend { naive, automaton };

/// Stable spelling ("naive", "automaton").
std::string_view labeling_backend_name(labeling_backend backend);

/// Inverse of labeling_backend_name; nullopt for unknown spellings.
std::optional<labeling_backend> labeling_backend_from_name(std::string_view name);

/// The classifier's verdict for one description.
struct classification {
  fault_tag tag = fault_tag::unknown;
  failure_category category = failure_category::unknown;
  double score = 0.0;        ///< winning tag's total vote weight
  double runner_up = 0.0;    ///< second-best tag's weight (0 when none)
  double confidence = 0.0;   ///< (score - runner_up) / score; 0 for unknown
  std::vector<std::string> matched_phrases;  ///< stems of winning matches, joined by ' '
};

/// Scores for every tag (diagnostics / Fig. 6 style breakdowns).
using tag_scores = std::map<fault_tag, double>;

class keyword_voting_classifier {
 public:
  explicit keyword_voting_classifier(failure_dictionary dictionary,
                                     labeling_backend backend = labeling_backend::automaton);

  /// Classifies one free-text description.
  classification classify(std::string_view description) const;

  /// Raw per-tag vote totals for a description.
  tag_scores score_all(std::string_view description) const;

  /// Classifies a batch of descriptions; result i is classify(descriptions[i]).
  /// With parallelism > 1 the batch is split across that many workers, each
  /// with its own scratch buffers against the shared read-only automaton;
  /// the output is identical for any worker count.
  std::vector<classification> classify_all(std::span<const std::string_view> descriptions,
                                           unsigned parallelism = 1) const;

  labeling_backend backend() const { return backend_; }
  const failure_dictionary& dictionary() const { return dictionary_; }

 private:
  /// Reusable per-worker buffers for the automaton path.
  struct scratch {
    token_scratch tokens;
    std::vector<std::uint32_t> stem_ids;
    std::vector<std::size_t> counts;
    std::vector<double> block_totals;  ///< vote total per tag block
  };

  /// Vote totals for an already tokenized/stemmed description (naive path).
  tag_scores score_stems(const std::vector<std::string>& stems) const;

  /// Automaton path: one matching pass over `description`, leaving
  /// per-phrase hit counts in s.counts and per-tag vote totals (accumulated
  /// in the naive scorer's float addition order) in s.block_totals.
  void score_interned(std::string_view description, scratch& s) const;

  classification classify_with(std::string_view description, scratch& s) const;

  failure_dictionary dictionary_;
  labeling_backend backend_;
  stem_interner interner_;      ///< frozen after automaton construction
  phrase_automaton automaton_;  ///< compiled over every dictionary phrase
  /// phrase stems joined by ' ', indexed by global phrase id — precomputed
  /// so the hot path copies instead of re-joining per match.
  std::vector<std::string> phrase_texts_;
};

/// Counts contiguous occurrences of `phrase` in `stems`.
std::size_t count_phrase_matches(const std::vector<std::string>& stems,
                                 const std::vector<std::string>& phrase);

}  // namespace avtk::nlp
