#include "nlp/classifier.h"

#include <algorithm>

#include "obs/metrics.h"
#include "nlp/stemmer.h"
#include "nlp/stopwords.h"
#include "nlp/tokenizer.h"
#include "util/strings.h"

namespace avtk::nlp {

keyword_voting_classifier::keyword_voting_classifier(failure_dictionary dictionary)
    : dictionary_(std::move(dictionary)) {}

std::size_t count_phrase_matches(const std::vector<std::string>& stems,
                                 const std::vector<std::string>& phrase) {
  if (phrase.empty() || stems.empty() || phrase.size() > stems.size()) return 0;
  std::size_t count = 0;
  for (std::size_t i = 0; i + phrase.size() <= stems.size(); ++i) {
    bool match = true;
    for (std::size_t j = 0; j < phrase.size(); ++j) {
      if (stems[i + j] != phrase[j]) {
        match = false;
        break;
      }
    }
    if (match) ++count;
  }
  return count;
}

namespace {

// Stage III's shared preprocessing: tokenize, drop stop words and log
// boilerplate, stem.
std::vector<std::string> description_stems(std::string_view description) {
  auto words = tokenize_words(description);
  words = remove_stopwords(words);
  return stem_all(words);
}

}  // namespace

tag_scores keyword_voting_classifier::score_stems(const std::vector<std::string>& stems) const {
  tag_scores scores;
  for (const auto tag : dictionary_.tags()) {
    double total = 0;
    for (const auto& phrase : dictionary_.phrases(tag)) {
      const auto hits = count_phrase_matches(stems, phrase.stems);
      total += static_cast<double>(hits) * phrase.weight;
    }
    if (total > 0) scores[tag] = total;
  }
  return scores;
}

tag_scores keyword_voting_classifier::score_all(std::string_view description) const {
  return score_stems(description_stems(description));
}

classification keyword_voting_classifier::classify(std::string_view description) const {
  static obs::counter& classified = obs::metrics().get_counter("nlp.classifications");
  static obs::counter& unknown = obs::metrics().get_counter("nlp.unknown_tags");

  classified.add();
  classification out;
  const auto stems = description_stems(description);
  const auto scores = score_stems(stems);
  if (scores.empty()) {
    unknown.add();
    return out;  // Unknown-T / Unknown-C defaults
  }

  // Winner = max score; tie broken by the more specific tag (one with the
  // heaviest single phrase matched), then by enum order for determinism.
  fault_tag best = fault_tag::unknown;
  double best_score = 0;
  for (const auto& [tag, score] : scores) {
    if (score > best_score) {
      best = tag;
      best_score = score;
    }
  }
  double runner_up = 0;
  for (const auto& [tag, score] : scores) {
    if (tag != best) runner_up = std::max(runner_up, score);
  }

  out.tag = best;
  out.category = category_of(best);
  out.score = best_score;
  out.runner_up = runner_up;
  out.confidence = best_score > 0 ? (best_score - runner_up) / best_score : 0.0;

  // Record which of the winner's phrases matched, for auditability (the
  // paper's authors manually verified dictionary assignments). The stems
  // computed for scoring are reused — the description is not re-tokenized.
  for (const auto& phrase : dictionary_.phrases(best)) {
    if (count_phrase_matches(stems, phrase.stems) > 0) {
      out.matched_phrases.push_back(str::join(phrase.stems, " "));
    }
  }
  return out;
}

}  // namespace avtk::nlp
