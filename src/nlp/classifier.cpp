#include "nlp/classifier.h"

#include <algorithm>
#include <thread>

#include "obs/metrics.h"
#include "nlp/stemmer.h"
#include "nlp/stopwords.h"
#include "nlp/tokenizer.h"
#include "util/strings.h"

namespace avtk::nlp {

std::string_view labeling_backend_name(labeling_backend backend) {
  switch (backend) {
    case labeling_backend::naive:
      return "naive";
    case labeling_backend::automaton:
      return "automaton";
  }
  return "automaton";
}

std::optional<labeling_backend> labeling_backend_from_name(std::string_view name) {
  if (name == "naive") return labeling_backend::naive;
  if (name == "automaton") return labeling_backend::automaton;
  return std::nullopt;
}

keyword_voting_classifier::keyword_voting_classifier(failure_dictionary dictionary,
                                                     labeling_backend backend)
    : dictionary_(std::move(dictionary)),
      backend_(backend),
      automaton_(dictionary_, interner_) {
  phrase_texts_.reserve(automaton_.phrase_count());
  for (const auto& block : automaton_.tag_blocks()) {
    for (const auto& phrase : dictionary_.phrases(block.tag)) {
      phrase_texts_.push_back(str::join(phrase.stems, " "));
    }
  }
}

std::size_t count_phrase_matches(const std::vector<std::string>& stems,
                                 const std::vector<std::string>& phrase) {
  if (phrase.empty() || stems.empty() || phrase.size() > stems.size()) return 0;
  std::size_t count = 0;
  for (std::size_t i = 0; i + phrase.size() <= stems.size(); ++i) {
    bool match = true;
    for (std::size_t j = 0; j < phrase.size(); ++j) {
      if (stems[i + j] != phrase[j]) {
        match = false;
        break;
      }
    }
    if (match) ++count;
  }
  return count;
}

namespace {

// Stage III's shared preprocessing: tokenize, drop stop words and log
// boilerplate, stem. (The automaton backend fuses this into
// interned_stem_ids instead.)
std::vector<std::string> description_stems(std::string_view description) {
  auto words = tokenize_words(description);
  words = remove_stopwords(words);
  return stem_all(words);
}

// Winner = max score; tie broken by enum order for determinism (tags() and
// tag_blocks() iterate the ordered dictionary map, and strict > keeps the
// first maximum). Shared verbatim by both backends.
classification finalize_scores(const tag_scores& scores) {
  classification out;
  fault_tag best = fault_tag::unknown;
  double best_score = 0;
  for (const auto& [tag, score] : scores) {
    if (score > best_score) {
      best = tag;
      best_score = score;
    }
  }
  double runner_up = 0;
  for (const auto& [tag, score] : scores) {
    if (tag != best) runner_up = std::max(runner_up, score);
  }
  out.tag = best;
  out.category = category_of(best);
  out.score = best_score;
  out.runner_up = runner_up;
  out.confidence = best_score > 0 ? (best_score - runner_up) / best_score : 0.0;
  return out;
}

}  // namespace

tag_scores keyword_voting_classifier::score_stems(const std::vector<std::string>& stems) const {
  tag_scores scores;
  for (const auto tag : dictionary_.tags()) {
    double total = 0;
    for (const auto& phrase : dictionary_.phrases(tag)) {
      const auto hits = count_phrase_matches(stems, phrase.stems);
      total += static_cast<double>(hits) * phrase.weight;
    }
    if (total > 0) scores[tag] = total;
  }
  return scores;
}

void keyword_voting_classifier::score_interned(std::string_view description, scratch& s) const {
  interned_stem_ids(description, interner_, s.stem_ids, s.tokens);
  s.counts.assign(automaton_.phrase_count(), 0);
  automaton_.count_matches(s.stem_ids, s.counts);

  // Accumulate per tag in (tag, phrase index) order — the same float
  // addition order as the naive scorer, so totals are bit-identical.
  const auto& phrases = automaton_.phrases();
  const auto& blocks = automaton_.tag_blocks();
  s.block_totals.assign(blocks.size(), 0.0);
  for (std::size_t b = 0; b < blocks.size(); ++b) {
    double total = 0;
    for (std::uint32_t i = 0; i < blocks[b].count; ++i) {
      const auto pid = blocks[b].first + i;
      total += static_cast<double>(s.counts[pid]) * phrases[pid].weight;
    }
    s.block_totals[b] = total;
  }
}

classification keyword_voting_classifier::classify_with(std::string_view description,
                                                        scratch& s) const {
  static obs::counter& classified = obs::metrics().get_counter("nlp.classifications");
  static obs::counter& unknown = obs::metrics().get_counter("nlp.unknown_tags");
  classified.add();

  if (backend_ == labeling_backend::naive) {
    const auto stems = description_stems(description);
    const auto scores = score_stems(stems);
    if (scores.empty()) {
      unknown.add();
      return {};  // Unknown-T / Unknown-C defaults
    }
    auto out = finalize_scores(scores);
    // Record which of the winner's phrases matched, for auditability (the
    // paper's authors manually verified dictionary assignments). The stems
    // computed for scoring are reused — the description is not re-tokenized.
    for (const auto& phrase : dictionary_.phrases(out.tag)) {
      if (count_phrase_matches(stems, phrase.stems) > 0) {
        out.matched_phrases.push_back(str::join(phrase.stems, " "));
      }
    }
    return out;
  }

  score_interned(description, s);
  // Flat-array replay of finalize_scores: tag_blocks iterate in the same
  // ordered-map tag order the naive tag_scores map does, strict > keeps
  // the first maximum, and non-positive totals can never win or place —
  // exactly the naive selection rule, without a map allocation per call.
  const auto& blocks = automaton_.tag_blocks();
  fault_tag best = fault_tag::unknown;
  double best_score = 0;
  for (std::size_t b = 0; b < blocks.size(); ++b) {
    if (s.block_totals[b] > best_score) {
      best = blocks[b].tag;
      best_score = s.block_totals[b];
    }
  }
  if (best_score <= 0) {
    unknown.add();
    return {};  // Unknown-T / Unknown-C defaults
  }
  double runner_up = 0;
  for (std::size_t b = 0; b < blocks.size(); ++b) {
    if (blocks[b].tag != best) runner_up = std::max(runner_up, s.block_totals[b]);
  }
  classification out;
  out.tag = best;
  out.category = category_of(best);
  out.score = best_score;
  out.runner_up = runner_up;
  out.confidence = (best_score - runner_up) / best_score;
  // The hit counts from the single matching pass double as the
  // matched-phrase record: same phrases, same dictionary order.
  for (std::size_t b = 0; b < blocks.size(); ++b) {
    if (blocks[b].tag != best) continue;
    for (std::uint32_t i = 0; i < blocks[b].count; ++i) {
      const auto pid = blocks[b].first + i;
      if (s.counts[pid] > 0) out.matched_phrases.push_back(phrase_texts_[pid]);
    }
    break;
  }
  return out;
}

classification keyword_voting_classifier::classify(std::string_view description) const {
  thread_local scratch s;
  return classify_with(description, s);
}

tag_scores keyword_voting_classifier::score_all(std::string_view description) const {
  if (backend_ == labeling_backend::naive) {
    return score_stems(description_stems(description));
  }
  thread_local scratch s;
  score_interned(description, s);
  tag_scores scores;
  const auto& blocks = automaton_.tag_blocks();
  for (std::size_t b = 0; b < blocks.size(); ++b) {
    if (s.block_totals[b] > 0) scores[blocks[b].tag] = s.block_totals[b];
  }
  return scores;
}

std::vector<classification> keyword_voting_classifier::classify_all(
    std::span<const std::string_view> descriptions, unsigned parallelism) const {
  std::vector<classification> out(descriptions.size());
  unsigned workers = std::max(1u, parallelism);
  if (descriptions.size() < workers) {
    workers = descriptions.empty() ? 1u : static_cast<unsigned>(descriptions.size());
  }
  if (workers == 1) {
    scratch s;
    for (std::size_t i = 0; i < descriptions.size(); ++i) {
      out[i] = classify_with(descriptions[i], s);
    }
    return out;
  }
  // Fixed-stride split into disjoint result slots; the automaton, interner
  // and dictionary are read-only, so workers share them without locking.
  std::vector<std::thread> threads;
  threads.reserve(workers);
  for (unsigned t = 0; t < workers; ++t) {
    threads.emplace_back([&, t] {
      scratch s;
      for (std::size_t i = t; i < descriptions.size(); i += workers) {
        out[i] = classify_with(descriptions[i], s);
      }
    });
  }
  for (auto& thread : threads) thread.join();
  return out;
}

}  // namespace avtk::nlp
