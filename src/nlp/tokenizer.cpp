#include "nlp/tokenizer.h"

#include "util/strings.h"

namespace avtk::nlp {

namespace {

bool is_token_char(char c) { return str::is_alnum(c); }

bool is_number_token(std::string_view t) {
  bool saw_digit = false;
  for (char c : t) {
    if (str::is_digit(c)) {
      saw_digit = true;
    } else if (c != '.') {
      return false;
    }
  }
  return saw_digit;
}

}  // namespace

std::string_view next_token_view(std::string_view text, std::size_t& pos) {
  std::size_t i = pos;
  // Skip separators, but let a '.' glue digits together ("0.85").
  while (i < text.size() && !is_token_char(text[i])) ++i;
  const std::size_t start = i;
  while (i < text.size()) {
    if (is_token_char(text[i])) {
      ++i;
    } else if (text[i] == '.' && i + 1 < text.size() && str::is_digit(text[i + 1]) &&
               i > start && str::is_digit(text[i - 1])) {
      ++i;  // decimal point inside a number
    } else {
      break;
    }
  }
  pos = i;
  return text.substr(start, i - start);
}

std::vector<token> tokenize(std::string_view text) {
  std::vector<token> out;
  std::size_t pos = 0;
  while (true) {
    const auto raw = next_token_view(text, pos);
    if (raw.empty()) break;
    token t;
    t.text = str::to_lower(raw);
    t.offset = static_cast<std::size_t>(raw.data() - text.data());
    t.is_number = is_number_token(t.text);
    out.push_back(std::move(t));
  }
  return out;
}

std::vector<std::string> tokenize_words(std::string_view text) {
  std::vector<std::string> out;
  for (auto& t : tokenize(text)) out.push_back(std::move(t.text));
  return out;
}

}  // namespace avtk::nlp
