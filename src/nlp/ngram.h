// avtk/nlp/ngram.h
//
// N-gram extraction and frequency counting — used by the dictionary
// bootstrapper to surface candidate phrases from an unlabeled corpus
// (the paper's "several passes over the dataset to construct a Failure
// Dictionary").
#pragma once

#include <cstddef>
#include <map>
#include <string>
#include <vector>

namespace avtk::nlp {

/// All contiguous n-grams of exactly `n` tokens, joined by single spaces.
std::vector<std::string> ngrams(const std::vector<std::string>& tokens, std::size_t n);

/// Frequency table of all n-grams with n in [min_n, max_n] across a corpus
/// of token sequences.
std::map<std::string, std::size_t> ngram_counts(
    const std::vector<std::vector<std::string>>& corpus, std::size_t min_n, std::size_t max_n);

/// Candidate phrases: n-grams appearing at least `min_count` times, ranked
/// by count * n (frequent AND specific first).
struct phrase_candidate {
  std::string phrase;
  std::size_t count = 0;
  std::size_t length = 0;  ///< tokens in the phrase
};
std::vector<phrase_candidate> rank_candidates(
    const std::map<std::string, std::size_t>& counts, std::size_t min_count);

}  // namespace avtk::nlp
