#include "nlp/ngram.h"

#include <algorithm>

#include "util/strings.h"

namespace avtk::nlp {

std::vector<std::string> ngrams(const std::vector<std::string>& tokens, std::size_t n) {
  std::vector<std::string> out;
  if (n == 0 || tokens.size() < n) return out;
  out.reserve(tokens.size() - n + 1);
  for (std::size_t i = 0; i + n <= tokens.size(); ++i) {
    std::string g = tokens[i];
    for (std::size_t j = 1; j < n; ++j) {
      g += ' ';
      g += tokens[i + j];
    }
    out.push_back(std::move(g));
  }
  return out;
}

std::map<std::string, std::size_t> ngram_counts(
    const std::vector<std::vector<std::string>>& corpus, std::size_t min_n, std::size_t max_n) {
  std::map<std::string, std::size_t> counts;
  for (const auto& tokens : corpus) {
    for (std::size_t n = min_n; n <= max_n; ++n) {
      for (auto& g : ngrams(tokens, n)) ++counts[std::move(g)];
    }
  }
  return counts;
}

std::vector<phrase_candidate> rank_candidates(const std::map<std::string, std::size_t>& counts,
                                              std::size_t min_count) {
  std::vector<phrase_candidate> out;
  for (const auto& [phrase, count] : counts) {
    if (count < min_count) continue;
    phrase_candidate c;
    c.phrase = phrase;
    c.count = count;
    c.length = str::split_whitespace(phrase).size();
    out.push_back(std::move(c));
  }
  std::sort(out.begin(), out.end(), [](const phrase_candidate& a, const phrase_candidate& b) {
    const std::size_t sa = a.count * a.length;
    const std::size_t sb = b.count * b.length;
    if (sa != sb) return sa > sb;
    return a.phrase < b.phrase;
  });
  return out;
}

}  // namespace avtk::nlp
