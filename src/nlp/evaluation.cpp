#include "nlp/evaluation.h"

#include "util/table.h"

namespace avtk::nlp {

void confusion_matrix::add(fault_tag truth, fault_tag predicted) {
  ++cells_[{truth, predicted}];
  ++truth_totals_[truth];
  ++predicted_totals_[predicted];
  ++total_;
}

long long confusion_matrix::count(fault_tag truth, fault_tag predicted) const {
  const auto it = cells_.find({truth, predicted});
  return it == cells_.end() ? 0 : it->second;
}

double confusion_matrix::accuracy() const {
  if (total_ == 0) return 0;
  long long trace = 0;
  for (const auto tag : k_all_fault_tags) trace += count(tag, tag);
  return static_cast<double>(trace) / static_cast<double>(total_);
}

confusion_matrix::tag_metrics confusion_matrix::metrics_for(fault_tag tag) const {
  tag_metrics m;
  m.tag = tag;
  const auto truth_it = truth_totals_.find(tag);
  m.support = truth_it == truth_totals_.end() ? 0 : truth_it->second;
  const auto tp = count(tag, tag);
  const auto predicted_it = predicted_totals_.find(tag);
  const long long predicted = predicted_it == predicted_totals_.end() ? 0 : predicted_it->second;
  if (predicted > 0) m.precision = static_cast<double>(tp) / static_cast<double>(predicted);
  if (m.support > 0) m.recall = static_cast<double>(tp) / static_cast<double>(m.support);
  if (m.precision + m.recall > 0) {
    m.f1 = 2.0 * m.precision * m.recall / (m.precision + m.recall);
  }
  return m;
}

std::vector<confusion_matrix::tag_metrics> confusion_matrix::all_metrics() const {
  std::vector<tag_metrics> out;
  for (const auto tag : k_all_fault_tags) {
    const auto m = metrics_for(tag);
    if (m.support > 0) out.push_back(m);
  }
  return out;
}

double confusion_matrix::macro_f1() const {
  const auto metrics = all_metrics();
  if (metrics.empty()) return 0;
  double sum = 0;
  for (const auto& m : metrics) sum += m.f1;
  return sum / static_cast<double>(metrics.size());
}

std::string confusion_matrix::render() const {
  text_table t({"Tag", "Support", "Precision", "Recall", "F1"});
  t.set_title("Classifier quality per fault tag");
  for (const auto& m : all_metrics()) {
    std::string name(tag_name(m.tag));
    if (m.tag == fault_tag::av_controller_ml) name += " (ML)";
    if (m.tag == fault_tag::av_controller_system) name += " (Sys)";
    t.add_row({name, std::to_string(m.support), format_number(m.precision, 3),
               format_number(m.recall, 3), format_number(m.f1, 3)});
  }
  std::string out = t.render();
  out += "micro accuracy: " + format_percent(accuracy(), 1) +
         ", macro F1: " + format_number(macro_f1(), 3) + "\n";
  return out;
}

confusion_matrix evaluate_classifier(const keyword_voting_classifier& classifier,
                                     const std::vector<labeled_description>& corpus) {
  confusion_matrix cm;
  for (const auto& example : corpus) {
    cm.add(example.tag, classifier.classify(example.text).tag);
  }
  return cm;
}

}  // namespace avtk::nlp
