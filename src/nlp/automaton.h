// avtk/nlp/automaton.h
//
// Aho-Corasick phrase automaton for Stage-III labeling: every dictionary
// phrase (as a sequence of interned stem ids) across every tag is compiled
// into one matcher, so scoring a description is a single pass over its
// stems regardless of dictionary size — replacing the naive
// O(stems x phrases x phrase_len) per-phrase scan.
//
// The automaton stores its goto + failure function as one dense
// states x alphabet transition table (the alphabet is the dictionary's
// distinct stem vocabulary, interned to dense ids), so matching is one
// table lookup per stem. Suffix outputs are precomputed per state, which
// makes the match counts identical to the naive scorer's overlapping
// sliding-window counts — the differential test's load-bearing invariant.
//
// Thread-safety: immutable after construction; share one instance
// read-only across any number of classify workers.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "nlp/dictionary.h"
#include "nlp/interner.h"
#include "nlp/ontology.h"

namespace avtk::nlp {

class phrase_automaton {
 public:
  /// One compiled phrase, in global phrase-id order. Global ids follow the
  /// dictionary's own iteration order (tag, then phrase index within the
  /// tag), so per-tag scoring can replay the naive scorer's float
  /// accumulation order bit for bit.
  struct phrase_info {
    fault_tag tag = fault_tag::unknown;
    std::uint32_t index_in_tag = 0;  ///< position in dictionary.phrases(tag)
    double weight = 1.0;
  };

  /// Contiguous run of global phrase ids belonging to one tag.
  struct tag_block {
    fault_tag tag = fault_tag::unknown;
    std::uint32_t first = 0;  ///< first global phrase id of the tag
    std::uint32_t count = 0;  ///< number of phrases registered for the tag
  };

  /// Compiles every phrase of every tag in `dictionary`, interning each
  /// phrase stem into `interner`. The interner is mutated here and must be
  /// treated as frozen afterwards (the classify pass only reads it).
  phrase_automaton(const failure_dictionary& dictionary, stem_interner& interner);

  /// One pass over `stems` (interned ids; stem_interner::npos entries can
  /// never match and simply reset to the root). For every phrase occurrence
  /// ending anywhere in the stream, increments counts[global_phrase_id] —
  /// overlapping occurrences all count, exactly like count_phrase_matches.
  /// `counts` must hold phrase_count() zeroed entries.
  void count_matches(std::span<const std::uint32_t> stems,
                     std::span<std::size_t> counts) const;

  std::size_t phrase_count() const { return phrases_.size(); }
  const std::vector<phrase_info>& phrases() const { return phrases_; }
  const std::vector<tag_block>& tag_blocks() const { return blocks_; }

  /// Trie statistics, exposed for construction-edge-case tests (shared
  /// prefixes must share states; a phrase that is a prefix of another adds
  /// no state of its own).
  std::size_t state_count() const { return state_count_; }
  std::size_t alphabet_size() const { return alphabet_; }

 private:
  std::uint32_t step(std::uint32_t state, std::uint32_t stem_id) const {
    return stem_id < alphabet_ ? next_[state * alphabet_ + stem_id] : 0;
  }

  std::uint32_t alphabet_ = 0;     ///< interner size after dictionary interning
  std::size_t state_count_ = 0;
  std::vector<std::uint32_t> next_;  ///< dense goto+failure transition table
  // Per-state suffix-closed output lists, flattened: state s matches
  // out_ids_[out_first_[s] .. out_first_[s+1]).
  std::vector<std::uint32_t> out_first_;
  std::vector<std::uint32_t> out_ids_;
  std::vector<phrase_info> phrases_;
  std::vector<tag_block> blocks_;
};

}  // namespace avtk::nlp
