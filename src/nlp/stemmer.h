// avtk/nlp/stemmer.h
//
// Porter (1980) suffix-stripping stemmer. Stemming makes the failure
// dictionary robust to inflection ("disengaged", "disengaging",
// "disengagement" all stem to the same root family).
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace avtk::nlp {

/// Stems one lower-case word by the classic five-step Porter algorithm.
/// Words shorter than three characters are returned unchanged.
std::string stem(std::string_view word);

/// Stems `word` in place (same algorithm as stem()), reusing the string's
/// capacity — the allocation-free variant the fused token pass runs on a
/// caller-provided scratch buffer.
void stem_in_place(std::string& word);

/// Stems each word in place order.
std::vector<std::string> stem_all(const std::vector<std::string>& words);

}  // namespace avtk::nlp
