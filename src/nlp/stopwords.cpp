#include "nlp/stopwords.h"

#include <functional>
#include <unordered_set>

namespace avtk::nlp {

namespace {

// Transparent hash so the sets answer string_view queries without
// materializing a std::string — is_stopword sits on the per-token hot
// path of the fused Stage-III pass.
struct sv_hash {
  using is_transparent = void;
  std::size_t operator()(std::string_view s) const noexcept {
    return std::hash<std::string_view>{}(s);
  }
};
using word_set = std::unordered_set<std::string, sv_hash, std::equal_to<>>;

const word_set& stopword_set() {
  static const word_set words = {
      "a",     "an",    "and",   "are",   "as",    "at",    "be",    "by",     "for",
      "from",  "had",   "has",   "have",  "he",    "her",   "his",   "i",      "in",
      "is",    "it",    "its",   "of",    "on",    "or",    "that",  "the",    "their",
      "there", "these", "they",  "this",  "to",    "was",   "we",    "were",   "which",
      "while", "will",  "with",  "would", "you",   "your",  "not",   "no",     "but",
      "if",    "then",  "than",  "so",    "such",  "into",  "out",   "up",     "down",
      "over",  "under", "again", "once",  "here",  "when",  "where", "why",    "how",
      "all",   "any",   "both",  "each",  "few",   "more",  "most",  "other",  "some",
      "own",   "same",  "too",   "very",  "can",   "just",  "also",  "after",  "before",
      "during", "off",  "did",   "do",    "does",  "been",  "being", "because", "about",
  };
  return words;
}

const word_set& boilerplate_set() {
  // These tokens appear in the fixed narrative shell of nearly every log
  // line ("driver safely disengaged and resumed manual control") and in
  // generic AV vocabulary; they are uninformative for tag voting.
  static const word_set words = {
      "driver",    "safely",   "disengage", "disengaged", "disengagement", "resumed",
      "resume",    "manual",   "manually",  "control",    "took",          "take",
      "taken",     "takeover", "vehicle",   "car",        "av",            "autonomous",
      "mode",      "test",     "operator",  "precaution", "precautionary", "immediately",
      "required",  "request",  "operation", "safe",
  };
  return words;
}

}  // namespace

bool is_stopword(std::string_view word) { return stopword_set().contains(word); }

bool is_log_boilerplate(std::string_view word) { return boilerplate_set().contains(word); }

std::vector<std::string> remove_stopwords(const std::vector<std::string>& words,
                                          bool drop_boilerplate) {
  std::vector<std::string> out;
  out.reserve(words.size());
  for (const auto& w : words) {
    if (is_stopword(w)) continue;
    if (drop_boilerplate && is_log_boilerplate(w)) continue;
    out.push_back(w);
  }
  return out;
}

}  // namespace avtk::nlp
