// avtk/nlp/stopwords.h
//
// English stop-word filtering tuned for disengagement logs: the generic
// function words plus log boilerplate ("driver", "safely", "resumed",
// "manual", "control") that carries no fault signal and would otherwise
// dominate the keyword votes.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace avtk::nlp {

/// True for generic English stop words ("the", "and", ...).
bool is_stopword(std::string_view word);

/// True for DMV-log boilerplate that appears in nearly every record and
/// must not influence tag voting ("disengage", "driver", "took", ...).
bool is_log_boilerplate(std::string_view word);

/// Removes stop words and boilerplate from a token list.
std::vector<std::string> remove_stopwords(const std::vector<std::string>& words,
                                          bool drop_boilerplate = true);

}  // namespace avtk::nlp
