#include "nlp/interner.h"

#include <atomic>

#include "nlp/stemmer.h"
#include "nlp/stopwords.h"
#include "nlp/tokenizer.h"

namespace avtk::nlp {

std::uint64_t stem_interner::next_generation() {
  static std::atomic<std::uint64_t> counter{0};
  return counter.fetch_add(1, std::memory_order_relaxed) + 1;
}

std::uint32_t stem_interner::intern(std::string_view stem) {
  if (const auto it = ids_.find(stem); it != ids_.end()) return it->second;
  const auto id = static_cast<std::uint32_t>(spellings_.size());
  spellings_.emplace_back(stem);
  ids_.emplace(spellings_.back(), id);
  generation_ = next_generation();
  return id;
}

std::uint32_t stem_interner::find(std::string_view stem) const {
  const auto it = ids_.find(stem);
  return it == ids_.end() ? npos : it->second;
}

void interned_stem_ids(std::string_view text, const stem_interner& interner,
                       std::vector<std::uint32_t>& out, token_scratch& scratch) {
  out.clear();
  if (scratch.memo_generation != interner.generation()) {
    scratch.memo.clear();
    scratch.memo_generation = interner.generation();
  }
  std::size_t pos = 0;
  auto& word = scratch.word;
  while (true) {
    const auto raw = next_token_view(text, pos);
    if (raw.empty()) break;
    word.assign(raw);
    for (auto& c : word) {
      if (c >= 'A' && c <= 'Z') c = static_cast<char>(c - 'A' + 'a');
    }
    std::uint32_t id;
    if (const auto it = scratch.memo.find(word); it != scratch.memo.end()) {
      id = it->second;
    } else {
      if (is_stopword(word) || is_log_boilerplate(word)) {
        id = token_scratch::skip;
      } else {
        scratch.stem_buf = word;
        stem_in_place(scratch.stem_buf);
        id = interner.find(scratch.stem_buf);
      }
      if (scratch.memo.size() < token_scratch::memo_cap) scratch.memo.emplace(word, id);
    }
    if (id != token_scratch::skip) out.push_back(id);
  }
}

}  // namespace avtk::nlp
