// avtk/sim/stpa.h
//
// The paper's §III-B methodology as code: a machine-readable model of the
// Fig. 3 hierarchical control structure (controllers, controlled processes,
// control actions, feedback channels), STPA unsafe-control-action (UCA)
// enumeration in the four canonical guide phrases, and the mapping from
// causal factors to the fault tags of Table III. The analyses overlay
// observed hazard events on this structure, reproducing "accidents and
// disengagements seen in the data were overlaid on this structure".
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "nlp/ontology.h"
#include "sim/faults.h"
#include "sim/vehicle.h"

namespace avtk::sim::stpa {

/// Node kinds in the control structure.
enum class node_kind { controller, controlled_process, sensor_bank, actuator_bank, human };

struct node {
  std::string id;          ///< "planner_controller"
  std::string label;       ///< "Planner & Controller"
  node_kind kind = node_kind::controller;
  nlp::stpa_component component = nlp::stpa_component::unknown;
};

/// A directed edge: a control action (downward) or feedback (upward).
enum class edge_kind { control_action, feedback };

struct edge {
  std::string from;   ///< node id
  std::string to;     ///< node id
  edge_kind kind = edge_kind::control_action;
  std::string label;  ///< "trajectory commands", "detected objects", ...
};

/// One of the paper's highlighted control loops (CL-1..3).
struct control_loop_path {
  std::string id;                      ///< "CL-1"
  std::string description;
  std::vector<std::string> node_ids;   ///< loop members in order
};

/// The four STPA guide phrases for unsafe control actions.
enum class uca_kind {
  not_provided,        ///< required action missing
  provided_unsafe,     ///< action provided when it causes a hazard
  wrong_timing,        ///< too early / too late / wrong order
  wrong_duration,      ///< stopped too soon / applied too long
};

std::string_view uca_kind_name(uca_kind k);

/// One enumerated unsafe control action.
struct unsafe_control_action {
  std::string controller;            ///< node id issuing the action
  std::string action;                ///< the control action
  uca_kind kind = uca_kind::not_provided;
  std::string hazard;                ///< the resulting system hazard
  std::vector<fault_kind> causal_factors;  ///< fault kinds that can cause it
};

/// The AV control structure of Fig. 3.
class control_structure {
 public:
  /// Builds the canonical ADS structure (sensors -> recognition -> planner
  /// & controller -> follower -> actuators -> mechanical, with the AV
  /// driver and the non-AV driver in their loops).
  static control_structure autonomous_driving_system();

  const std::vector<node>& nodes() const { return nodes_; }
  const std::vector<edge>& edges() const { return edges_; }
  const std::vector<control_loop_path>& loops() const { return loops_; }
  const std::vector<unsafe_control_action>& ucas() const { return ucas_; }

  const node* find_node(std::string_view id) const;

  /// Edges leaving / entering a node.
  std::vector<const edge*> edges_from(std::string_view id) const;
  std::vector<const edge*> edges_into(std::string_view id) const;

  /// Every loop containing the node.
  std::vector<const control_loop_path*> loops_containing(std::string_view node_id) const;

  /// UCAs for which `fault` is a listed causal factor.
  std::vector<const unsafe_control_action*> ucas_caused_by(fault_kind fault) const;

  /// Validates structural invariants: edge endpoints exist, loops are
  /// closed paths over existing edges, every UCA controller exists, every
  /// fault kind appears as a causal factor somewhere. Throws
  /// avtk::logic_error on violation; returns the number of checks run.
  std::size_t validate() const;

  /// ASCII rendering of the structure (nodes, edges, loops).
  std::string render() const;

 private:
  std::vector<node> nodes_;
  std::vector<edge> edges_;
  std::vector<control_loop_path> loops_;
  std::vector<unsafe_control_action> ucas_;
};

/// Overlay of observed events on the structure: per STPA component, how
/// many hazards originated there and what they became (the paper's overlay
/// of disengagements/accidents on Fig. 3).
struct component_overlay {
  nlp::stpa_component component = nlp::stpa_component::unknown;
  long long hazards = 0;
  long long disengagements = 0;
  long long accidents = 0;
  long long absorbed = 0;
};

std::vector<component_overlay> overlay_events(const std::vector<hazard_event>& events);

std::string render_overlay(const std::vector<component_overlay>& overlay);

}  // namespace avtk::sim::stpa
