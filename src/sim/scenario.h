// avtk/sim/scenario.h
//
// The paper's two Section II case studies as scripted scenario replays.
// Each replay walks the STPA control loops step by step and returns a
// trace explaining how perception/prediction faults cascaded into a
// rear-end collision — the qualitative story behind Fig. 2.
#pragma once

#include <string>
#include <vector>

#include "sim/vehicle.h"

namespace avtk::sim {

/// One step in a scripted scenario trace.
struct scenario_step {
  double t_s = 0.0;           ///< scenario clock
  std::string actor;          ///< "AV", "AV driver", "rear vehicle", ...
  std::string action;
  nlp::stpa_component component = nlp::stpa_component::unknown;
};

struct scenario_trace {
  std::string name;
  std::vector<scenario_step> steps;
  hazard_outcome outcome = hazard_outcome::absorbed;
  fault_kind root_fault = fault_kind::wrong_prediction;
  double action_window_s = 0.0;  ///< time the driver actually had
  double response_time_s = 0.0;  ///< detection + reaction actually needed

  /// Renders the trace as indented text.
  std::string render() const;
};

/// Case Study I (§II-A): the AV yields to a pedestrian but does not stop;
/// the test driver proactively takes over; braking in a boxed-in scenario
/// ends with a rear collision.
scenario_trace run_case_study_1();

/// Case Study II (§II-B): the AV's stop-and-creep at a right turn confuses
/// the driver behind, who rear-ends it.
scenario_trace run_case_study_2();

}  // namespace avtk::sim
