// avtk/sim/faults.h
//
// Fault model for the STPA control structure of Fig. 3. Each fault kind
// localizes to one component of the Autonomous Driving System and maps to
// the fault tag the NLP pipeline would assign to its log line, closing the
// loop between the generative simulator and the analysis pipeline.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "nlp/ontology.h"
#include "util/rng.h"

namespace avtk::sim {

/// Faults injectable into the simulated ADS, per STPA component.
enum class fault_kind {
  // Sensors (CL-2 feedback path).
  sensor_dropout,        ///< LIDAR/RADAR/camera frame loss
  sensor_miscalibration, ///< drifting extrinsics
  gps_loss,              ///< localization outage
  // Recognition.
  missed_detection,      ///< object present, not reported
  false_detection,       ///< phantom object reported
  late_detection,        ///< object reported after deadline
  // Planner & controller.
  infeasible_plan,       ///< trajectory violates dynamics
  wrong_prediction,      ///< mispredicted other agent behavior
  bad_decision,          ///< feasible but unsafe action chosen
  // Follower / actuation.
  actuation_timeout,     ///< command not executed in time
  // Platform.
  software_crash,
  watchdog_timeout,
  compute_overload,
  network_overload,
  // Environment (external, not a component defect).
  reckless_road_user,
  construction_zone,
  weather_degradation,
};

inline constexpr std::size_t k_fault_kind_count = 17;

/// All fault kinds in declaration order.
std::vector<fault_kind> all_fault_kinds();

/// Human-readable name ("missed_detection").
std::string_view fault_kind_name(fault_kind k);

/// The STPA component the fault localizes to.
nlp::stpa_component component_of(fault_kind k);

/// The fault tag the analysis pipeline should assign to this fault's log
/// description.
nlp::fault_tag tag_of(fault_kind k);

/// A log line describing the fault the way a manufacturer's report would.
std::string describe_fault(fault_kind k, rng& gen);

/// Per-mile base hazard rates for each fault kind, scaled by a maturity
/// factor (rates fall as the fleet accumulates miles: the "burn-in" the
/// paper observes). Invariant: rates >= 0, 0 < maturity_floor <= 1.
class fault_injector {
 public:
  struct config {
    double base_rate_per_mile = 0.02;  ///< total across all kinds at maturity 1
    double learning_exponent = 0.35;   ///< rate ~ (cum_miles+1)^-exponent
    double maturity_floor = 0.05;      ///< rates never fall below floor * base
    double environment_share = 0.25;   ///< share of hazards that are external
  };

  explicit fault_injector(config cfg, std::uint64_t seed);

  /// Draws the faults manifesting over `miles` of driving given fleet
  /// cumulative miles `cum_miles` (Poisson per kind).
  std::vector<fault_kind> draw_faults(double miles, double cum_miles);

  /// Current total rate per mile at the given cumulative mileage.
  double rate_per_mile(double cum_miles) const;

  /// Relative weight of one kind within the total rate.
  double kind_weight(fault_kind k) const;

 private:
  config cfg_;
  rng gen_;
  std::vector<double> weights_;  // per kind, sums to 1
};

}  // namespace avtk::sim
