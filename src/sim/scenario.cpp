#include "sim/scenario.h"

#include <cstdio>

namespace avtk::sim {

namespace {

std::string_view component_label(nlp::stpa_component c) {
  switch (c) {
    case nlp::stpa_component::sensors: return "sensors";
    case nlp::stpa_component::recognition: return "recognition";
    case nlp::stpa_component::planner_controller: return "planner/controller";
    case nlp::stpa_component::follower_actuators: return "follower/actuators";
    case nlp::stpa_component::mechanical: return "mechanical";
    case nlp::stpa_component::network: return "network";
    case nlp::stpa_component::driver: return "driver";
    case nlp::stpa_component::unknown: return "-";
  }
  return "-";
}

}  // namespace

std::string scenario_trace::render() const {
  std::string out = name + "\n";
  char buf[32];
  for (const auto& s : steps) {
    std::snprintf(buf, sizeof(buf), "  t=%5.2fs ", s.t_s);
    out += buf;
    out += "[" + std::string(component_label(s.component)) + "] " + s.actor + ": " + s.action +
           "\n";
  }
  out += "  outcome: " + std::string(hazard_outcome_name(outcome)) +
         " (root fault: " + std::string(fault_kind_name(root_fault)) + ")\n";
  std::snprintf(buf, sizeof(buf), "%.2f", action_window_s);
  out += "  action window: " + std::string(buf) + " s, ";
  std::snprintf(buf, sizeof(buf), "%.2f", response_time_s);
  out += "needed: " + std::string(buf) + " s\n";
  return out;
}

scenario_trace run_case_study_1() {
  using c = nlp::stpa_component;
  scenario_trace t;
  t.name = "Case Study I: real-time decisions at a pedestrian crossing";
  t.root_fault = fault_kind::wrong_prediction;
  t.steps = {
      {0.00, "pedestrian", "starts crossing the street at the intersection", c::unknown},
      {0.15, "AV", "camera/LIDAR report the pedestrian", c::sensors},
      {0.30, "AV", "recognition confirms a crossing pedestrian", c::recognition},
      {0.45, "AV", "planner decides to yield — but does not command a full stop",
       c::planner_controller},
      {0.45, "AV", "behavior prediction under-estimates the pedestrian's pace",
       c::planner_controller},
      {1.20, "AV driver", "judges the yield insufficient, proactively takes control",
       c::driver},
      {1.40, "lead vehicle", "also yielding to the pedestrian, directly ahead", c::unknown},
      {1.40, "adjacent vehicle", "changing into the AV's lane from behind", c::unknown},
      {1.55, "AV driver", "only option is to brake hard", c::driver},
      {2.10, "rear vehicle", "cannot anticipate the hard stop; collides with AV's rear",
       c::unknown},
  };
  t.outcome = hazard_outcome::accident;
  // The driver had ~0.9 s between recognizing the bad yield decision and
  // the point of no return; detection + reaction needed ~1.6 s.
  t.action_window_s = 0.9;
  t.response_time_s = 1.6;
  return t;
}

scenario_trace run_case_study_2() {
  using c = nlp::stpa_component;
  scenario_trace t;
  t.name = "Case Study II: anticipating AV behavior at a right turn";
  t.root_fault = fault_kind::reckless_road_user;
  t.steps = {
      {0.00, "AV", "signals right turn, decelerates", c::planner_controller},
      {1.00, "AV", "comes to a complete stop before the intersection", c::follower_actuators},
      {1.80, "AV", "creeps forward so recognition can see cross traffic", c::recognition},
      {1.80, "rear driver", "reads the creep as the AV committing to the turn", c::unknown},
      {2.40, "AV", "stops again — scene analysis not yet confident", c::recognition},
      {2.40, "rear driver", "has already started moving; brakes late", c::unknown},
      {2.90, "rear vehicle", "rear-ends the AV at low speed", c::unknown},
  };
  t.outcome = hazard_outcome::accident;
  // The conflict arises in the rear driver's model of the AV; the AV driver
  // had effectively no window at all.
  t.action_window_s = 0.5;
  t.response_time_s = 1.1;
  return t;
}

}  // namespace avtk::sim
