#include "sim/stpa.h"

#include <algorithm>
#include <map>
#include <set>

#include "util/errors.h"
#include "util/table.h"

namespace avtk::sim::stpa {

std::string_view uca_kind_name(uca_kind k) {
  switch (k) {
    case uca_kind::not_provided: return "not provided";
    case uca_kind::provided_unsafe: return "provided, causes hazard";
    case uca_kind::wrong_timing: return "wrong timing/order";
    case uca_kind::wrong_duration: return "wrong duration";
  }
  throw logic_error("unreachable uca_kind");
}

control_structure control_structure::autonomous_driving_system() {
  control_structure s;
  using c = nlp::stpa_component;

  s.nodes_ = {
      {"av_driver", "AV Safety Driver", node_kind::human, c::driver},
      {"nonav_driver", "Non-AV Driver", node_kind::human, c::unknown},
      {"sensors", "Sensors (GPS/RADAR/LIDAR/Camera/SONAR)", node_kind::sensor_bank,
       c::sensors},
      {"recognition", "Recognition System", node_kind::controller, c::recognition},
      {"planner_controller", "Planner & Controller", node_kind::controller,
       c::planner_controller},
      {"follower", "Follower", node_kind::controller, c::follower_actuators},
      {"actuators", "Actuators", node_kind::actuator_bank, c::follower_actuators},
      {"mechanical", "Mechanical Components", node_kind::controlled_process, c::mechanical},
      {"environment", "Road Environment", node_kind::controlled_process, c::unknown},
  };

  s.edges_ = {
      // Downward control path.
      {"recognition", "planner_controller", edge_kind::control_action,
       "scene model / object tracks"},
      {"planner_controller", "follower", edge_kind::control_action, "trajectory commands"},
      {"follower", "actuators", edge_kind::control_action, "actuation setpoints"},
      {"actuators", "mechanical", edge_kind::control_action, "steering/throttle/brake force"},
      // The human fall-back path.
      {"av_driver", "mechanical", edge_kind::control_action, "manual takeover inputs"},
      {"planner_controller", "av_driver", edge_kind::feedback, "takeover requests / alerts"},
      // Sensing & feedback path.
      {"environment", "sensors", edge_kind::feedback, "physical signals"},
      {"sensors", "recognition", edge_kind::feedback, "raw sensor frames"},
      {"mechanical", "follower", edge_kind::feedback, "odometry / actuator state"},
      {"mechanical", "environment", edge_kind::control_action, "vehicle motion"},
      {"environment", "av_driver", edge_kind::feedback, "direct observation"},
      // Interaction with other road users (the CL-1 outer loop).
      {"nonav_driver", "environment", edge_kind::control_action, "other-vehicle motion"},
      {"environment", "nonav_driver", edge_kind::feedback,
       "AV signals (brake lights, indicators, horn)"},
  };

  s.loops_ = {
      {"CL-1",
       "autonomous control + mechanical system + human drivers (the full outer loop of the "
       "two case studies)",
       {"environment", "sensors", "recognition", "planner_controller", "follower",
        "actuators", "mechanical", "environment"}},
      {"CL-2", "perception-control inner loop",
       {"environment", "sensors", "recognition", "planner_controller", "av_driver",
        "mechanical", "environment"}},
      {"CL-3", "actuation tracking loop",
       {"follower", "actuators", "mechanical", "follower"}},
  };

  using fk = fault_kind;
  s.ucas_ = {
      {"planner_controller", "brake/yield for crossing pedestrian", uca_kind::not_provided,
       "collision with vulnerable road user",
       {fk::missed_detection, fk::late_detection, fk::sensor_dropout}},
      {"planner_controller", "brake/yield for crossing pedestrian", uca_kind::wrong_duration,
       "yield without stopping leaves conflict unresolved (Case Study I)",
       {fk::wrong_prediction, fk::bad_decision}},
      {"planner_controller", "proceed through intersection", uca_kind::wrong_timing,
       "stop-and-creep confuses following traffic (Case Study II)",
       {fk::wrong_prediction, fk::reckless_road_user}},
      {"planner_controller", "trajectory command stream", uca_kind::not_provided,
       "vehicle without control authority",
       {fk::software_crash, fk::watchdog_timeout, fk::compute_overload}},
      {"planner_controller", "trajectory command stream", uca_kind::provided_unsafe,
       "infeasible or unsafe path commanded",
       {fk::infeasible_plan, fk::bad_decision, fk::false_detection}},
      {"follower", "actuation setpoints", uca_kind::not_provided,
       "commanded maneuver never executed",
       {fk::actuation_timeout, fk::network_overload}},
      {"recognition", "scene model updates", uca_kind::wrong_timing,
       "stale world model downstream",
       {fk::late_detection, fk::compute_overload, fk::network_overload,
        fk::weather_degradation}},
      {"recognition", "scene model updates", uca_kind::provided_unsafe,
       "phantom objects trigger unnecessary evasive action",
       {fk::false_detection, fk::sensor_miscalibration}},
      {"sensors", "localization fixes", uca_kind::not_provided,
       "vehicle lost relative to map",
       {fk::gps_loss, fk::sensor_dropout, fk::sensor_miscalibration}},
      {"av_driver", "manual takeover", uca_kind::wrong_timing,
       "takeover after the action window closed (reaction-time accidents)",
       {fk::construction_zone, fk::reckless_road_user, fk::wrong_prediction}},
  };
  return s;
}

const node* control_structure::find_node(std::string_view id) const {
  for (const auto& n : nodes_) {
    if (n.id == id) return &n;
  }
  return nullptr;
}

std::vector<const edge*> control_structure::edges_from(std::string_view id) const {
  std::vector<const edge*> out;
  for (const auto& e : edges_) {
    if (e.from == id) out.push_back(&e);
  }
  return out;
}

std::vector<const edge*> control_structure::edges_into(std::string_view id) const {
  std::vector<const edge*> out;
  for (const auto& e : edges_) {
    if (e.to == id) out.push_back(&e);
  }
  return out;
}

std::vector<const control_loop_path*> control_structure::loops_containing(
    std::string_view node_id) const {
  std::vector<const control_loop_path*> out;
  for (const auto& loop : loops_) {
    if (std::find(loop.node_ids.begin(), loop.node_ids.end(), node_id) !=
        loop.node_ids.end()) {
      out.push_back(&loop);
    }
  }
  return out;
}

std::vector<const unsafe_control_action*> control_structure::ucas_caused_by(
    fault_kind fault) const {
  std::vector<const unsafe_control_action*> out;
  for (const auto& uca : ucas_) {
    if (std::find(uca.causal_factors.begin(), uca.causal_factors.end(), fault) !=
        uca.causal_factors.end()) {
      out.push_back(&uca);
    }
  }
  return out;
}

std::size_t control_structure::validate() const {
  std::size_t checks = 0;

  const auto require = [&checks](bool ok, const std::string& what) {
    ++checks;
    if (!ok) throw logic_error("STPA structure invalid: " + what);
  };

  std::set<std::string> ids;
  for (const auto& n : nodes_) {
    require(!n.id.empty() && !n.label.empty(), "node with empty id/label");
    require(ids.insert(n.id).second, "duplicate node id " + n.id);
  }
  for (const auto& e : edges_) {
    require(find_node(e.from) != nullptr, "edge from unknown node " + e.from);
    require(find_node(e.to) != nullptr, "edge into unknown node " + e.to);
    require(!e.label.empty(), "unlabeled edge " + e.from + "->" + e.to);
  }
  for (const auto& loop : loops_) {
    require(loop.node_ids.size() >= 3, "loop " + loop.id + " too short");
    require(loop.node_ids.front() == loop.node_ids.back(),
            "loop " + loop.id + " is not closed");
    for (std::size_t i = 0; i + 1 < loop.node_ids.size(); ++i) {
      const auto& from = loop.node_ids[i];
      const auto& to = loop.node_ids[i + 1];
      bool edge_exists = false;
      for (const auto& e : edges_) {
        if (e.from == from && e.to == to) edge_exists = true;
      }
      require(edge_exists, "loop " + loop.id + " uses missing edge " + from + "->" + to);
    }
  }
  for (const auto& uca : ucas_) {
    require(find_node(uca.controller) != nullptr, "UCA on unknown controller " + uca.controller);
    require(!uca.causal_factors.empty(), "UCA without causal factors: " + uca.action);
  }
  // Coverage: every injectable fault must be a causal factor of some UCA or
  // at least map to a component present in the structure.
  for (const auto k : all_fault_kinds()) {
    bool covered = !ucas_caused_by(k).empty();
    if (!covered) {
      const auto comp = component_of(k);
      for (const auto& n : nodes_) {
        if (n.component == comp) covered = true;
      }
    }
    require(covered, std::string("fault kind uncovered: ") + std::string(fault_kind_name(k)));
  }
  return checks;
}

std::string control_structure::render() const {
  std::string out = "STPA control structure (Fig. 3)\n";
  for (const auto& n : nodes_) {
    out += "  [" + n.id + "] " + n.label + "\n";
    for (const auto* e : edges_from(n.id)) {
      out += std::string("    ") + (e->kind == edge_kind::control_action ? "-->" : "~~>") +
             " " + e->to + " (" + e->label + ")\n";
    }
  }
  out += "Control loops:\n";
  for (const auto& loop : loops_) {
    out += "  " + loop.id + ": ";
    for (std::size_t i = 0; i < loop.node_ids.size(); ++i) {
      if (i > 0) out += " -> ";
      out += loop.node_ids[i];
    }
    out += "\n";
  }
  out += "Unsafe control actions:\n";
  for (const auto& uca : ucas_) {
    out += "  [" + uca.controller + "] " + uca.action + " (" +
           std::string(uca_kind_name(uca.kind)) + "): " + uca.hazard + "\n";
  }
  return out;
}

std::vector<component_overlay> overlay_events(const std::vector<hazard_event>& events) {
  std::map<nlp::stpa_component, component_overlay> cells;
  for (const auto& ev : events) {
    auto& c = cells[component_of(ev.fault)];
    c.component = component_of(ev.fault);
    ++c.hazards;
    switch (ev.outcome) {
      case hazard_outcome::absorbed: ++c.absorbed; break;
      case hazard_outcome::accident:
        ++c.accidents;
        ++c.disengagements;  // an accident implies a handover too
        break;
      default: ++c.disengagements; break;
    }
  }
  std::vector<component_overlay> out;
  for (auto& [comp, cell] : cells) out.push_back(cell);
  std::sort(out.begin(), out.end(), [](const component_overlay& a, const component_overlay& b) {
    return a.hazards > b.hazards;
  });
  return out;
}

std::string render_overlay(const std::vector<component_overlay>& overlay) {
  const auto component_label = [](nlp::stpa_component c) -> std::string {
    switch (c) {
      case nlp::stpa_component::sensors: return "Sensors";
      case nlp::stpa_component::recognition: return "Recognition";
      case nlp::stpa_component::planner_controller: return "Planner & Controller";
      case nlp::stpa_component::follower_actuators: return "Follower/Actuators";
      case nlp::stpa_component::mechanical: return "Mechanical";
      case nlp::stpa_component::network: return "Network";
      case nlp::stpa_component::driver: return "Driver";
      case nlp::stpa_component::unknown: return "Unknown";
    }
    return "Unknown";
  };
  text_table t({"STPA component", "Hazards", "Disengagements", "Accidents", "Absorbed"});
  t.set_title("Observed events overlaid on the control structure");
  for (const auto& row : overlay) {
    t.add_row({component_label(row.component), std::to_string(row.hazards),
               std::to_string(row.disengagements), std::to_string(row.accidents),
               std::to_string(row.absorbed)});
  }
  return t.render();
}

}  // namespace avtk::sim::stpa
