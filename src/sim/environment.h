// avtk/sim/environment.h
//
// The traffic environment the simulated fleet drives through: road types
// with the dataset's observed mix, weather, and per-road-type scenario
// complexity (intersections are where the paper's accidents concentrate).
#pragma once

#include "dataset/records.h"
#include "util/rng.h"

namespace avtk::sim {

/// One driving context drawn for a hazard event.
struct driving_context {
  dataset::road_type road = dataset::road_type::city_street;
  dataset::weather conditions = dataset::weather::sunny;
  bool near_intersection = false;
  double traffic_density = 0.5;   ///< 0 (empty) .. 1 (congested)
  double speed_mph = 25.0;        ///< typical operating speed in this context

  /// How little time/maneuvering room the context leaves: city
  /// intersections in dense traffic are the tightest (the §II case
  /// studies). In [0, 1].
  double complexity() const;
};

class environment_model {
 public:
  explicit environment_model(std::uint64_t seed);

  /// Draws a context with the corpus road-type mix (§III-C: 31.7% city,
  /// 29.26% highway, 14.63% interstate, 9.75% freeway, rest other).
  driving_context sample_context();

 private:
  rng gen_;
};

}  // namespace avtk::sim
