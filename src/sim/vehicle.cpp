#include "sim/vehicle.h"

#include <algorithm>

#include "util/errors.h"

namespace avtk::sim {

std::string_view hazard_outcome_name(hazard_outcome o) {
  switch (o) {
    case hazard_outcome::absorbed: return "absorbed";
    case hazard_outcome::automatic_disengagement: return "automatic disengagement";
    case hazard_outcome::manual_disengagement: return "manual disengagement";
    case hazard_outcome::accident: return "accident";
  }
  throw logic_error("unreachable hazard_outcome");
}

av_vehicle::av_vehicle(std::string id, config cfg, std::uint64_t seed)
    : id_(std::move(id)),
      cfg_(cfg),
      loop_(cfg.loop, seed ^ 0x1111),
      driver_(cfg.driver, seed ^ 0x2222),
      environment_(seed ^ 0x3333),
      gen_(seed ^ 0x4444) {}

hazard_event av_vehicle::resolve_hazard(fault_kind fault, double fleet_cum_miles) {
  hazard_event ev;
  ev.fault = fault;
  ev.context = environment_.sample_context();
  ev.fleet_miles_at_event = fleet_cum_miles;
  ev.response = loop_.process_hazard(fault, ev.context.complexity());
  ev.description = describe_fault(fault, gen_);

  if (ev.response.ads_handled) {
    ev.outcome = hazard_outcome::absorbed;
    return ev;
  }

  // The driver's end-to-end action window: how long until the hazard
  // becomes a conflict, minus the time the failure stayed latent.
  const double window =
      gen_.exponential(cfg_.mean_action_window_s) * (1.0 - 0.6 * ev.context.complexity());
  ev.action_window_s = std::max(0.05, window);

  const bool hazardous = gen_.bernoulli(
      std::clamp(cfg_.hazardous_share * (0.5 + ev.context.complexity()), 0.0, 1.0));

  if (cfg_.driverless) {
    // No fall-back human: the ADS must catch its own failure within the
    // window; a hazardous undetected (or late) failure is a collision.
    ev.reaction_time_s = 0.0;
    if (hazardous &&
        (!ev.response.ads_detected || ev.response.detection_latency_s > ev.action_window_s)) {
      ev.outcome = hazard_outcome::accident;
    } else {
      ev.outcome = hazard_outcome::automatic_disengagement;  // minimal-risk stop
    }
    return ev;
  }

  const bool proactive = driver_.takes_over_proactively();
  ev.reaction_time_s = driver_.sample_reaction_time(fleet_cum_miles);
  const double response_time = ev.response.detection_latency_s + ev.reaction_time_s;

  if (hazardous && response_time > ev.action_window_s) {
    ev.outcome = hazard_outcome::accident;
  } else if (proactive && !ev.response.ads_detected) {
    // The driver noticed before (or instead of) the ADS: manual takeover.
    ev.outcome = hazard_outcome::manual_disengagement;
  } else if (ev.response.ads_detected) {
    ev.outcome = hazard_outcome::automatic_disengagement;
  } else {
    ev.outcome = hazard_outcome::manual_disengagement;
  }
  return ev;
}

std::vector<hazard_event> av_vehicle::drive(double miles, double fleet_cum_miles,
                                            fault_injector& injector) {
  std::vector<hazard_event> out;
  if (!(miles > 0)) return out;
  odometer_ += miles;
  for (const auto fault : injector.draw_faults(miles, fleet_cum_miles)) {
    out.push_back(resolve_hazard(fault, fleet_cum_miles));
  }
  return out;
}

}  // namespace avtk::sim
