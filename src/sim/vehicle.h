// avtk/sim/vehicle.h
//
// One simulated AV: integrates the control loop, the safety driver and the
// environment into the hazard -> disengagement/accident process the paper
// measures. The vehicle advances in driving segments (miles); each segment
// draws faults from the injector, runs them through the control loop, and
// resolves each into {handled autonomously, automatic disengagement,
// manual disengagement, accident}.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "sim/control_loop.h"
#include "sim/driver.h"
#include "sim/environment.h"
#include "sim/faults.h"

namespace avtk::sim {

/// How one hazard resolved.
enum class hazard_outcome {
  absorbed,                 ///< ADS handled it; nothing reported
  automatic_disengagement,
  manual_disengagement,
  accident,
};

std::string_view hazard_outcome_name(hazard_outcome o);

/// Trace entry for one hazard.
struct hazard_event {
  fault_kind fault = fault_kind::missed_detection;
  hazard_outcome outcome = hazard_outcome::absorbed;
  driving_context context;
  loop_response response;
  double reaction_time_s = 0.0;   ///< driver reaction (0 when ADS absorbed)
  double action_window_s = 0.0;   ///< time available before conflict
  double fleet_miles_at_event = 0.0;
  std::string description;        ///< manufacturer-style log line
};

class av_vehicle {
 public:
  struct config {
    control_loop::config loop;
    safety_driver::config driver;
    /// Mean seconds of margin before a hazard becomes a collision; scaled
    /// down by context complexity (intersections leave less time).
    double mean_action_window_s = 20.0;
    /// Fraction of hazards that carry collision potential at all (most
    /// disengagements are benign handovers; the corpus sees one accident
    /// per ~127 disengagements).
    double hazardous_share = 0.05;
    /// Level 4/5 mode: no safety driver. Unhandled hazards cannot become
    /// manual disengagements — benign ones resolve as automatic handovers
    /// (remote assistance / minimal-risk stop), hazardous ones the ADS
    /// fails to detect in time become accidents. The paper's conclusion
    /// flags exactly this regime as "significant and underestimated".
    bool driverless = false;
  };

  av_vehicle(std::string id, config cfg, std::uint64_t seed);

  /// Drives `miles` given the fleet's cumulative miles; returns the hazards
  /// the segment produced (outcome-resolved). The injector is shared fleet
  /// state so learning spans vehicles.
  std::vector<hazard_event> drive(double miles, double fleet_cum_miles,
                                  fault_injector& injector);

  const std::string& id() const { return id_; }
  double odometer_miles() const { return odometer_; }

 private:
  hazard_event resolve_hazard(fault_kind fault, double fleet_cum_miles);

  std::string id_;
  config cfg_;
  control_loop loop_;
  safety_driver driver_;
  environment_model environment_;
  rng gen_;
  double odometer_ = 0.0;
};

}  // namespace avtk::sim
