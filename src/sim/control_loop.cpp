#include "sim/control_loop.h"

#include <algorithm>

namespace avtk::sim {

control_loop::control_loop(config cfg, std::uint64_t seed) : cfg_(cfg), gen_(seed) {}

loop_response control_loop::process_hazard(fault_kind fault, double complexity) {
  loop_response out;
  out.failing_fault = fault;
  const auto failing_component = component_of(fault);

  // Latency inflation: platform faults slow every stage.
  double slowdown = 1.0;
  if (fault == fault_kind::compute_overload) slowdown = 3.0;
  if (fault == fault_kind::network_overload) slowdown = 2.0;

  const struct {
    nlp::stpa_component component;
    double latency;
    const char* name;
  } chain[] = {
      {nlp::stpa_component::sensors, cfg_.sensor_latency_s, "sensors"},
      {nlp::stpa_component::recognition, cfg_.recognition_latency_s, "recognition"},
      {nlp::stpa_component::planner_controller, cfg_.planning_latency_s, "planner/controller"},
      {nlp::stpa_component::follower_actuators, cfg_.actuation_latency_s, "follower/actuators"},
  };

  bool upstream_failed = false;
  double latency = 0.0;
  for (const auto& stage : chain) {
    stage_outcome so;
    so.component = stage.component;
    so.latency_s = stage.latency * slowdown * (1.0 + 0.5 * complexity);
    latency += so.latency_s;

    const bool is_fault_origin =
        stage.component == failing_component ||
        // Network faults surface between stages; attribute to the planner
        // stage where commands go missing.
        (fault == fault_kind::network_overload &&
         stage.component == nlp::stpa_component::planner_controller);

    if (is_fault_origin) {
      so.handled = false;
      so.note = std::string("fault origin: ") + std::string(fault_kind_name(fault));
      upstream_failed = true;
    } else if (upstream_failed) {
      // Fault propagation (CL-1): garbage in from the failed stage. The
      // stage occasionally catches it via sanity checks.
      const bool caught = gen_.bernoulli(0.35 * (1.0 - complexity));
      so.handled = caught;
      so.note = caught ? "downstream sanity check flagged upstream fault"
                       : "propagated upstream fault";
    } else {
      so.handled = true;
      so.note = "nominal";
    }
    out.stages.push_back(std::move(so));
  }

  // Self-detection: watchdogs and cross-checks surface most platform
  // faults; silent ML misbehavior is harder to self-detect.
  double detect_p = cfg_.self_detection_p;
  switch (fault) {
    case fault_kind::watchdog_timeout:
    case fault_kind::software_crash:
    case fault_kind::actuation_timeout:
      detect_p = 0.95;
      break;
    case fault_kind::missed_detection:
    case fault_kind::wrong_prediction:
    case fault_kind::bad_decision:
      detect_p = 0.35;
      break;
    default:
      break;
  }
  out.ads_detected = gen_.bernoulli(detect_p);

  // Autonomous recovery: easier in simple contexts, impossible for hard
  // platform crashes.
  double recover_p = cfg_.autonomous_recovery_p * (1.0 - 0.7 * complexity);
  if (fault == fault_kind::software_crash || fault == fault_kind::watchdog_timeout) {
    recover_p = 0.0;
  }
  out.ads_handled = gen_.bernoulli(std::clamp(recover_p, 0.0, 1.0));

  // Detection latency: the chain latency plus a recognition penalty when
  // the failure is a silent ML one.
  out.detection_latency_s = latency;
  if (!out.ads_detected) out.detection_latency_s += gen_.uniform(0.3, 1.5) * (1.0 + complexity);
  return out;
}

}  // namespace avtk::sim
