// avtk/sim/fleet.h
//
// The fleet simulator: N vehicles driving over a span of months, sharing a
// fault injector whose rates fall with cumulative fleet miles ("burn-in").
// Output is both a raw hazard trace and dataset-compatible records, so the
// simulated fleet can be pushed through the identical Stage II-IV analysis
// pipeline as the DMV corpus — the avtk equivalent of a manufacturer
// analyzing its own testing fleet.
#pragma once

#include <vector>

#include "dataset/database.h"
#include "obs/trace.h"
#include "sim/vehicle.h"
#include "util/dates.h"

namespace avtk::sim {

struct fleet_config {
  int vehicles = 10;
  year_month first_month{2015, 1};
  int months = 12;
  double miles_per_vehicle_month = 800.0;  ///< mean; per-month draw varies
  av_vehicle::config vehicle;
  fault_injector::config faults;
  std::uint64_t seed = 42;
  dataset::manufacturer maker = dataset::manufacturer::waymo;  ///< label for records
  /// When non-null, records a `fleet` span with one `month` child per
  /// simulated month. Never affects the simulation's RNG stream or output.
  obs::trace* trace = nullptr;
};

/// Aggregate results of one fleet run.
struct fleet_result {
  std::vector<hazard_event> events;           ///< full trace, time-ordered by month
  dataset::failure_database database;         ///< records for the analysis pipeline
  /// The simulated span, echoed from the config so consumers that slice
  /// the output by month (the soak workload builder) need not carry the
  /// config alongside the result.
  year_month first_month{2015, 1};
  int months = 0;
  double total_miles = 0;
  long long disengagements = 0;
  long long accidents = 0;
  long long absorbed = 0;

  double dpm() const {
    return total_miles > 0 ? static_cast<double>(disengagements) / total_miles : 0.0;
  }
  double apm() const {
    return total_miles > 0 ? static_cast<double>(accidents) / total_miles : 0.0;
  }
};

/// Runs the simulation to completion.
fleet_result run_fleet(const fleet_config& config);

/// Converts one hazard event into a disengagement record (for events whose
/// outcome is a disengagement) — shared with run_fleet and the examples.
dataset::disengagement_record to_disengagement_record(const hazard_event& ev,
                                                      dataset::manufacturer maker,
                                                      const std::string& vehicle_id, date when);

}  // namespace avtk::sim
