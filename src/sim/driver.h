// avtk/sim/driver.h
//
// The safety-driver model. Reaction times follow an exponentiated-Weibull
// law (Fig. 11), and alertness decays as the fleet's reliability improves
// (the paper's §V-A4 finding: reaction time correlates positively with
// cumulative miles — drivers relax as disengagements get rarer).
#pragma once

#include "util/rng.h"

namespace avtk::sim {

class safety_driver {
 public:
  struct config {
    double rt_shape = 1.5;      ///< exponentiated-Weibull shape
    double rt_scale = 0.65;     ///< scale (seconds)
    double rt_power = 1.0;      ///< exponentiation power
    double complacency = 0.15;  ///< how strongly alertness decays with miles
    double proactive_share = 0.5;  ///< probability the driver preempts the ADS
  };

  safety_driver(config cfg, std::uint64_t seed);

  /// Samples one reaction time (seconds) given the fleet's cumulative
  /// miles; complacency stretches the distribution multiplicatively as
  /// log10(cum_miles) grows.
  double sample_reaction_time(double cum_miles);

  /// True when the driver proactively takes over before the ADS requests it
  /// (a "manual" disengagement in Table V's taxonomy).
  bool takes_over_proactively();

  /// Alertness multiplier in [1, ...): 1 at 0 miles, grows with miles.
  double reaction_stretch(double cum_miles) const;

 private:
  config cfg_;
  rng gen_;
};

}  // namespace avtk::sim
