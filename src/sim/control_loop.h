// avtk/sim/control_loop.h
//
// The ADS processing chain of Fig. 3: sensors -> recognition -> planner &
// controller -> follower -> actuators (control loops CL-1..3). The model
// tracks end-to-end latency and whether each stage handled the hazard,
// so a fault's propagation path is explicit in the trace.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "sim/faults.h"
#include "util/rng.h"

namespace avtk::sim {

/// One stage's outcome while processing a hazard.
struct stage_outcome {
  nlp::stpa_component component = nlp::stpa_component::sensors;
  bool handled = true;       ///< stage produced correct output
  double latency_s = 0.0;    ///< processing latency contributed
  std::string note;          ///< human-readable trace line
};

/// The chain's verdict on one hazard.
struct loop_response {
  std::vector<stage_outcome> stages;
  bool ads_detected = false;     ///< the ADS recognized its own failure
  bool ads_handled = false;      ///< the ADS resolved the hazard autonomously
  double detection_latency_s = 0.0;  ///< time until failure surfaced
  std::optional<fault_kind> failing_fault;
};

/// The ADS processing chain with nominal per-stage latencies; faults both
/// break a stage and inflate latency (compute/network overloads slow every
/// stage downstream of them).
class control_loop {
 public:
  struct config {
    double sensor_latency_s = 0.02;
    double recognition_latency_s = 0.08;
    double planning_latency_s = 0.10;
    double actuation_latency_s = 0.05;
    /// Probability the ADS self-detects a component fault and hands over
    /// (an "automatic" disengagement) rather than silently misbehaving.
    double self_detection_p = 0.55;
    /// Probability the ADS absorbs the hazard entirely (no disengagement);
    /// rises with maturity in the fleet model.
    double autonomous_recovery_p = 0.30;
  };

  control_loop(config cfg, std::uint64_t seed);

  /// Processes one hazard caused by `fault` in a context of the given
  /// complexity in [0, 1]. Complexity lowers recovery odds and raises
  /// detection latency (dense intersections give the chain less margin).
  loop_response process_hazard(fault_kind fault, double complexity);

  const config& parameters() const { return cfg_; }

 private:
  config cfg_;
  rng gen_;
};

}  // namespace avtk::sim
