#include "sim/environment.h"

#include <algorithm>

namespace avtk::sim {

using dataset::road_type;
using dataset::weather;

double driving_context::complexity() const {
  double c = 0.0;
  switch (road) {
    case road_type::city_street: c = 0.55; break;
    case road_type::urban: c = 0.55; break;
    case road_type::suburban: c = 0.40; break;
    case road_type::parking_lot: c = 0.35; break;
    case road_type::rural: c = 0.30; break;
    case road_type::highway: c = 0.25; break;
    case road_type::freeway: c = 0.22; break;
    case road_type::interstate: c = 0.20; break;
    case road_type::unknown: c = 0.35; break;
  }
  if (near_intersection) c += 0.25;
  c += 0.20 * traffic_density;
  if (conditions == weather::rainy || conditions == weather::foggy) c += 0.10;
  return std::clamp(c, 0.0, 1.0);
}

environment_model::environment_model(std::uint64_t seed) : gen_(seed) {}

driving_context environment_model::sample_context() {
  driving_context ctx;

  static const std::vector<std::pair<road_type, double>> roads = {
      {road_type::city_street, 0.317}, {road_type::highway, 0.2926},
      {road_type::interstate, 0.1463}, {road_type::freeway, 0.0975},
      {road_type::parking_lot, 0.05},  {road_type::suburban, 0.05},
      {road_type::rural, 0.046},
  };
  std::vector<double> w;
  for (const auto& [r, weight] : roads) w.push_back(weight);
  ctx.road = roads[gen_.categorical(w)].first;

  static const std::vector<std::pair<weather, double>> skies = {
      {weather::sunny, 0.55}, {weather::cloudy, 0.15}, {weather::overcast, 0.12},
      {weather::rainy, 0.10}, {weather::foggy, 0.03},  {weather::clear_night, 0.05},
  };
  std::vector<double> sw;
  for (const auto& [s, weight] : skies) sw.push_back(weight);
  ctx.conditions = skies[gen_.categorical(sw)].first;

  // Intersections dominate on city streets, are rare on limited-access roads.
  double intersection_p = 0.0;
  switch (ctx.road) {
    case road_type::city_street:
    case road_type::urban: intersection_p = 0.55; break;
    case road_type::suburban: intersection_p = 0.40; break;
    case road_type::rural: intersection_p = 0.20; break;
    case road_type::parking_lot: intersection_p = 0.15; break;
    default: intersection_p = 0.02; break;
  }
  ctx.near_intersection = gen_.bernoulli(intersection_p);
  ctx.traffic_density = gen_.uniform(0.0, 1.0);

  switch (ctx.road) {
    case road_type::city_street:
    case road_type::urban: ctx.speed_mph = gen_.uniform(5.0, 35.0); break;
    case road_type::suburban: ctx.speed_mph = gen_.uniform(15.0, 40.0); break;
    case road_type::parking_lot: ctx.speed_mph = gen_.uniform(2.0, 10.0); break;
    case road_type::rural: ctx.speed_mph = gen_.uniform(25.0, 55.0); break;
    default: ctx.speed_mph = gen_.uniform(45.0, 70.0); break;
  }
  if (ctx.near_intersection) ctx.speed_mph = std::min(ctx.speed_mph, 25.0);
  return ctx;
}

}  // namespace avtk::sim
