#include "sim/driver.h"

#include <cmath>

namespace avtk::sim {

safety_driver::safety_driver(config cfg, std::uint64_t seed) : cfg_(cfg), gen_(seed) {}

double safety_driver::reaction_stretch(double cum_miles) const {
  if (cum_miles <= 1.0) return 1.0;
  return 1.0 + cfg_.complacency * std::log10(cum_miles);
}

double safety_driver::sample_reaction_time(double cum_miles) {
  const double base = gen_.exponentiated_weibull(cfg_.rt_shape, cfg_.rt_scale, cfg_.rt_power);
  return base * reaction_stretch(cum_miles);
}

bool safety_driver::takes_over_proactively() { return gen_.bernoulli(cfg_.proactive_share); }

}  // namespace avtk::sim
