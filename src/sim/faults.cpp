#include "sim/faults.h"

#include <cmath>

#include "util/errors.h"

namespace avtk::sim {

std::vector<fault_kind> all_fault_kinds() {
  return {
      fault_kind::sensor_dropout,     fault_kind::sensor_miscalibration,
      fault_kind::gps_loss,           fault_kind::missed_detection,
      fault_kind::false_detection,    fault_kind::late_detection,
      fault_kind::infeasible_plan,    fault_kind::wrong_prediction,
      fault_kind::bad_decision,       fault_kind::actuation_timeout,
      fault_kind::software_crash,     fault_kind::watchdog_timeout,
      fault_kind::compute_overload,   fault_kind::network_overload,
      fault_kind::reckless_road_user, fault_kind::construction_zone,
      fault_kind::weather_degradation,
  };
}

std::string_view fault_kind_name(fault_kind k) {
  switch (k) {
    case fault_kind::sensor_dropout: return "sensor_dropout";
    case fault_kind::sensor_miscalibration: return "sensor_miscalibration";
    case fault_kind::gps_loss: return "gps_loss";
    case fault_kind::missed_detection: return "missed_detection";
    case fault_kind::false_detection: return "false_detection";
    case fault_kind::late_detection: return "late_detection";
    case fault_kind::infeasible_plan: return "infeasible_plan";
    case fault_kind::wrong_prediction: return "wrong_prediction";
    case fault_kind::bad_decision: return "bad_decision";
    case fault_kind::actuation_timeout: return "actuation_timeout";
    case fault_kind::software_crash: return "software_crash";
    case fault_kind::watchdog_timeout: return "watchdog_timeout";
    case fault_kind::compute_overload: return "compute_overload";
    case fault_kind::network_overload: return "network_overload";
    case fault_kind::reckless_road_user: return "reckless_road_user";
    case fault_kind::construction_zone: return "construction_zone";
    case fault_kind::weather_degradation: return "weather_degradation";
  }
  throw logic_error("unreachable fault_kind");
}

nlp::stpa_component component_of(fault_kind k) {
  switch (k) {
    case fault_kind::sensor_dropout:
    case fault_kind::sensor_miscalibration:
    case fault_kind::gps_loss:
      return nlp::stpa_component::sensors;
    case fault_kind::missed_detection:
    case fault_kind::false_detection:
    case fault_kind::late_detection:
      return nlp::stpa_component::recognition;
    case fault_kind::infeasible_plan:
    case fault_kind::wrong_prediction:
    case fault_kind::bad_decision:
    case fault_kind::software_crash:
    case fault_kind::watchdog_timeout:
    case fault_kind::compute_overload:
      return nlp::stpa_component::planner_controller;
    case fault_kind::actuation_timeout:
      return nlp::stpa_component::follower_actuators;
    case fault_kind::network_overload:
      return nlp::stpa_component::network;
    case fault_kind::reckless_road_user:
    case fault_kind::construction_zone:
    case fault_kind::weather_degradation:
      return nlp::stpa_component::recognition;  // manifests through perception
  }
  throw logic_error("unreachable fault_kind");
}

nlp::fault_tag tag_of(fault_kind k) {
  switch (k) {
    case fault_kind::sensor_dropout:
    case fault_kind::sensor_miscalibration:
    case fault_kind::gps_loss:
      return nlp::fault_tag::sensor;
    case fault_kind::missed_detection:
    case fault_kind::false_detection:
    case fault_kind::late_detection:
      return nlp::fault_tag::recognition_system;
    case fault_kind::infeasible_plan:
      return nlp::fault_tag::planner;
    case fault_kind::wrong_prediction:
      return nlp::fault_tag::incorrect_behavior_prediction;
    case fault_kind::bad_decision:
      return nlp::fault_tag::av_controller_ml;
    case fault_kind::actuation_timeout:
      return nlp::fault_tag::av_controller_system;
    case fault_kind::software_crash:
      return nlp::fault_tag::software;
    case fault_kind::watchdog_timeout:
      return nlp::fault_tag::hang_crash;
    case fault_kind::compute_overload:
      return nlp::fault_tag::computer_system;
    case fault_kind::network_overload:
      return nlp::fault_tag::network;
    case fault_kind::reckless_road_user:
    case fault_kind::construction_zone:
    case fault_kind::weather_degradation:
      return nlp::fault_tag::environment;
  }
  throw logic_error("unreachable fault_kind");
}

std::string describe_fault(fault_kind k, rng& gen) {
  const auto pick = [&gen](std::vector<std::string> options) {
    return gen.pick(options);
  };
  switch (k) {
    case fault_kind::sensor_dropout:
      return pick({"LIDAR dropout during operation.", "Camera blackout for several frames.",
                   "RADAR malfunction reported by the sensor monitor."});
    case fault_kind::sensor_miscalibration:
      return pick({"Calibration drift on the forward sensor suite.",
                   "Sensor reading invalid; redundant channel disagreed."});
    case fault_kind::gps_loss:
      return pick({"GPS signal lost under the overpass.", "Sensor failed to localize in time."});
    case fault_kind::missed_detection:
      return pick({"The AV didn't see the lead vehicle.",
                   "Missed detection of a merging vehicle.",
                   "Failed to detect a pedestrian at the crosswalk in time."});
    case fault_kind::false_detection:
      return pick({"False obstacle reported by the perception system.",
                   "Misdetected obstacle in the adjacent lane."});
    case fault_kind::late_detection:
      return pick({"Perception system failed to detect the traffic light state.",
                   "Recognition system failed to recognize a stop sign in time."});
    case fault_kind::infeasible_plan:
      return pick({"Motion planning produced an infeasible path around the obstruction.",
                   "Trajectory planning error during the lane change."});
    case fault_kind::wrong_prediction:
      return pick({"Incorrect behavior prediction for the adjacent vehicle.",
                   "Failed to predict behavior of the merging truck."});
    case fault_kind::bad_decision:
      return pick({"Controller made a wrong decision at the intersection.",
                   "Poor decision in a complex traffic scenario."});
    case fault_kind::actuation_timeout:
      return pick({"AV controller did not respond to commands.",
                   "Steering command ignored by the actuation layer."});
    case fault_kind::software_crash:
      return pick({"Software crash in the planning process.", "Software module froze."});
    case fault_kind::watchdog_timeout:
      return pick({"Watchdog timer expired on the control computer.",
                   "Watchdog timeout triggered a takeover request."});
    case fault_kind::compute_overload:
      return pick({"Processor overload on the compute platform.",
                   "High CPU load caused delayed perception output."});
    case fault_kind::network_overload:
      return pick({"Data rate too high to be handled by the network.",
                   "CAN bus overload dropped actuation messages."});
    case fault_kind::reckless_road_user:
      return "Disengage for a recklessly behaving road user.";
    case fault_kind::construction_zone:
      return "Undetected construction zone forced a takeover.";
    case fault_kind::weather_degradation:
      return pick({"Heavy rain degraded visibility of the roadway.",
                   "Sun glare on the roadway during late afternoon operation."});
  }
  throw logic_error("unreachable fault_kind");
}

fault_injector::fault_injector(config cfg, std::uint64_t seed) : cfg_(cfg), gen_(seed) {
  if (cfg_.base_rate_per_mile < 0 || cfg_.learning_exponent < 0 ||
      cfg_.maturity_floor <= 0 || cfg_.maturity_floor > 1 ||
      cfg_.environment_share < 0 || cfg_.environment_share > 1) {
    throw logic_error("invalid fault_injector config");
  }
  // Component-fault weights loosely follow the corpus tag mixture: most
  // hazards are perception-related, then planning, then platform.
  weights_.assign(k_fault_kind_count, 0.0);
  const auto set = [&](fault_kind k, double w) {
    weights_[static_cast<std::size_t>(k)] = w;
  };
  const double comp = 1.0 - cfg_.environment_share;
  set(fault_kind::sensor_dropout, comp * 0.05);
  set(fault_kind::sensor_miscalibration, comp * 0.03);
  set(fault_kind::gps_loss, comp * 0.03);
  set(fault_kind::missed_detection, comp * 0.18);
  set(fault_kind::false_detection, comp * 0.10);
  set(fault_kind::late_detection, comp * 0.12);
  set(fault_kind::infeasible_plan, comp * 0.09);
  set(fault_kind::wrong_prediction, comp * 0.10);
  set(fault_kind::bad_decision, comp * 0.05);
  set(fault_kind::actuation_timeout, comp * 0.02);
  set(fault_kind::software_crash, comp * 0.11);
  set(fault_kind::watchdog_timeout, comp * 0.03);
  set(fault_kind::compute_overload, comp * 0.06);
  set(fault_kind::network_overload, comp * 0.03);
  set(fault_kind::reckless_road_user, cfg_.environment_share * 0.5);
  set(fault_kind::construction_zone, cfg_.environment_share * 0.25);
  set(fault_kind::weather_degradation, cfg_.environment_share * 0.25);
}

double fault_injector::rate_per_mile(double cum_miles) const {
  const double maturity = std::pow(cum_miles + 1.0, -cfg_.learning_exponent);
  return cfg_.base_rate_per_mile *
         std::max(maturity, cfg_.maturity_floor);
}

double fault_injector::kind_weight(fault_kind k) const {
  return weights_[static_cast<std::size_t>(k)];
}

std::vector<fault_kind> fault_injector::draw_faults(double miles, double cum_miles) {
  std::vector<fault_kind> out;
  if (!(miles > 0)) return out;
  const double total_rate = rate_per_mile(cum_miles) * miles;
  const auto count = gen_.poisson(total_rate);
  for (std::int64_t i = 0; i < count; ++i) {
    const auto idx = gen_.categorical(weights_);
    out.push_back(all_fault_kinds()[idx]);
  }
  return out;
}

}  // namespace avtk::sim
