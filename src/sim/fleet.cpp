#include "sim/fleet.h"

#include <cstdio>

#include "obs/metrics.h"
#include "util/errors.h"

namespace avtk::sim {

dataset::disengagement_record to_disengagement_record(const hazard_event& ev,
                                                      dataset::manufacturer maker,
                                                      const std::string& vehicle_id, date when) {
  dataset::disengagement_record d;
  d.maker = maker;
  d.event_date = when;
  d.vehicle_id = vehicle_id;
  d.description = ev.description;
  d.road = ev.context.road;
  d.conditions = ev.context.conditions;
  d.reaction_time_s = ev.reaction_time_s > 0 ? std::optional<double>(ev.reaction_time_s)
                                             : std::nullopt;
  switch (ev.outcome) {
    case hazard_outcome::automatic_disengagement:
      d.mode = dataset::modality::automatic;
      break;
    case hazard_outcome::manual_disengagement:
    case hazard_outcome::accident:
      d.mode = dataset::modality::manual;
      break;
    default:
      d.mode = dataset::modality::unknown;
      break;
  }
  // Ground-truth tag from the injected fault; the pipeline's NLP stage can
  // re-derive it from `description` for validation.
  d.tag = tag_of(ev.fault);
  d.category = nlp::category_of(d.tag);
  return d;
}

fleet_result run_fleet(const fleet_config& config) {
  if (config.vehicles <= 0 || config.months <= 0) {
    throw logic_error("fleet_config requires vehicles > 0 and months > 0");
  }
  fleet_result result;
  result.first_month = config.first_month;
  result.months = config.months;
  rng gen(config.seed);
  fault_injector injector(config.faults, gen.fork().engine()());

  std::vector<av_vehicle> fleet;
  fleet.reserve(static_cast<std::size_t>(config.vehicles));
  for (int v = 0; v < config.vehicles; ++v) {
    char id[32];
    std::snprintf(id, sizeof(id), "SIM-AV%03d", v + 1);
    fleet.emplace_back(id, config.vehicle, gen.fork().engine()());
  }

  const obs::scoped_span fleet_span(config.trace, "fleet");

  double fleet_cum = 0;
  auto month = config.first_month;
  for (int m = 0; m < config.months; ++m, month = month.next()) {
    const obs::scoped_span month_span(config.trace, "month", fleet_span.id());
    for (std::size_t v = 0; v < fleet.size(); ++v) {
      const double miles =
          std::max(0.0, gen.normal(config.miles_per_vehicle_month,
                                   config.miles_per_vehicle_month * 0.25));
      if (!(miles > 0)) continue;

      dataset::mileage_record mr;
      mr.maker = config.maker;
      mr.vehicle_id = fleet[v].id();
      mr.month = month;
      mr.miles = miles;
      result.database.add_mileage(mr);

      const auto events = fleet[v].drive(miles, fleet_cum, injector);
      fleet_cum += miles;
      result.total_miles += miles;

      for (const auto& ev : events) {
        const int day = static_cast<int>(gen.uniform_int(1, date::days_in_month(month.year, month.month)));
        const auto when = date::make(month.year, month.month, day);
        switch (ev.outcome) {
          case hazard_outcome::absorbed:
            ++result.absorbed;
            break;
          case hazard_outcome::automatic_disengagement:
          case hazard_outcome::manual_disengagement:
            ++result.disengagements;
            result.database.add_disengagement(
                to_disengagement_record(ev, config.maker, fleet[v].id(), when));
            break;
          case hazard_outcome::accident: {
            // An accident implies a (manual) disengagement too — the paper
            // counts the disengagement and the accident separately.
            ++result.disengagements;
            ++result.accidents;
            result.database.add_disengagement(
                to_disengagement_record(ev, config.maker, fleet[v].id(), when));
            dataset::accident_record a;
            a.maker = config.maker;
            a.event_date = when;
            a.vehicle_id = fleet[v].id();
            a.location = ev.context.near_intersection ? "Simulated intersection"
                                                      : "Simulated roadway";
            a.description = "Simulated collision following: " + ev.description;
            a.av_speed_mph = ev.context.speed_mph;
            a.other_speed_mph = ev.context.speed_mph + 5.0;
            a.near_intersection = ev.context.near_intersection;
            a.rear_end = true;
            result.database.add_accident(a);
            break;
          }
        }
        result.events.push_back(ev);
      }
    }
  }

  auto& registry = obs::metrics();
  registry.get_counter("sim.fleet_runs").add();
  registry.get_counter("sim.hazard_events").add(static_cast<std::uint64_t>(result.events.size()));
  registry.get_counter("sim.disengagements")
      .add(static_cast<std::uint64_t>(result.disengagements));
  registry.get_counter("sim.accidents").add(static_cast<std::uint64_t>(result.accidents));
  registry.get_counter("sim.absorbed").add(static_cast<std::uint64_t>(result.absorbed));
  registry.add_gauge("sim.total_miles", result.total_miles);
  return result;
}

}  // namespace avtk::sim
