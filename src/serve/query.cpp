#include "serve/query.h"

#include <cmath>

#include "obs/json.h"

namespace avtk::serve {

namespace json = obs::json;

std::string_view query_kind_name(query_kind k) {
  switch (k) {
    case query_kind::metrics: return "metrics";
    case query_kind::tags: return "tags";
    case query_kind::categories: return "categories";
    case query_kind::modality: return "modality";
    case query_kind::trend: return "trend";
    case query_kind::fit: return "fit";
    case query_kind::compare: return "compare";
    case query_kind::mcf: return "mcf";
    case query_kind::nhpp: return "nhpp";
  }
  return "metrics";
}

std::optional<query_kind> query_kind_from_string(std::string_view s) {
  for (const auto k : k_all_query_kinds) {
    if (s == query_kind_name(k)) return k;
  }
  return std::nullopt;
}

domain_mask query::dependencies() const {
  switch (kind) {
    // Pure disengagement breakdowns: mileage and accidents never enter.
    case query_kind::tags:
    case query_kind::categories:
    case query_kind::modality:
    case query_kind::fit:
      return domain_disengagements;
    // Exposure-normalized series read mileage too; the reliability event
    // processes are built from disengagement counts spread over the mileage
    // ledger, so accident appends must not touch their cached results.
    case query_kind::trend:
    case query_kind::mcf:
    case query_kind::nhpp:
      return domain_disengagements | domain_mileage;
    // Full reliability metrics fold in accident counts (DPA / APM / APMi).
    case query_kind::metrics:
    case query_kind::compare:
      return domain_disengagements | domain_mileage | domain_accidents;
  }
  return domain_disengagements | domain_mileage | domain_accidents;
}

namespace {

// Machine id for the canonical key ("ml_design", not "ML/Design").
std::string_view category_id(nlp::failure_category c) {
  switch (c) {
    case nlp::failure_category::ml_design: return "ml_design";
    case nlp::failure_category::system: return "system";
    case nlp::failure_category::unknown: return "unknown";
  }
  return "unknown";
}

}  // namespace

std::string query::canonical() const {
  std::string out(query_kind_name(kind));
  char sep = '?';
  const auto add = [&](std::string_view field, std::string_view value) {
    out += sep;
    sep = '&';
    out += field;
    out += '=';
    out += value;
  };
  if (maker) add("maker", dataset::manufacturer_id(*maker));
  if (year) add("year", std::to_string(*year));
  if (tag) add("tag", nlp::tag_id(*tag));
  if (category) add("category", category_id(*category));
  // Kind-specific knobs appear only in the kinds they shape, so
  // {"query":"tags","min_samples":7} and {"query":"tags"} coincide.
  if (kind == query_kind::fit) add("min_samples", std::to_string(min_samples));
  if (kind == query_kind::mcf) {
    add("replicates", std::to_string(replicates));
    add("seed", std::to_string(seed));
  }
  if (kind == query_kind::nhpp) {
    add("horizon_miles", std::to_string(static_cast<long long>(horizon_miles)));
  }
  return out;
}

std::optional<query> parse_query(std::string_view text, query_parse_error* error) {
  const auto fail = [&](std::string message) -> std::optional<query> {
    if (error != nullptr) error->message = std::move(message);
    return std::nullopt;
  };

  const auto doc = json::parse(text);
  if (!doc) return fail("request is not valid JSON");
  if (!doc->is_object()) return fail("request must be a JSON object");

  query q;
  bool saw_kind = false;
  for (const auto& [key, value] : doc->as_object()) {
    if (key == "query") {
      if (!value.is_string()) return fail("'query' must be a string");
      const auto kind = query_kind_from_string(value.as_string());
      if (!kind) return fail("unknown query kind '" + value.as_string() + "'");
      q.kind = *kind;
      saw_kind = true;
    } else if (key == "maker") {
      if (!value.is_string()) return fail("'maker' must be a string");
      const auto maker = dataset::manufacturer_from_string(value.as_string());
      if (!maker) return fail("unknown manufacturer '" + value.as_string() + "'");
      q.maker = *maker;
    } else if (key == "year") {
      if (!value.is_number() || value.as_number() != std::floor(value.as_number())) {
        return fail("'year' must be an integer");
      }
      const double year = value.as_number();
      if (year < 1990 || year > 2100) return fail("'year' out of range");
      q.year = static_cast<int>(year);
    } else if (key == "tag") {
      if (!value.is_string()) return fail("'tag' must be a string");
      const auto tag = nlp::tag_from_string(value.as_string());
      if (!tag) return fail("unknown fault tag '" + value.as_string() + "'");
      q.tag = *tag;
    } else if (key == "category") {
      if (!value.is_string()) return fail("'category' must be a string");
      const auto category = nlp::category_from_string(value.as_string());
      if (!category) return fail("unknown category '" + value.as_string() + "'");
      q.category = *category;
    } else if (key == "min_samples") {
      if (!value.is_number() || value.as_number() != std::floor(value.as_number()) ||
          value.as_number() < 1) {
        return fail("'min_samples' must be a positive integer");
      }
      q.min_samples = static_cast<std::size_t>(value.as_number());
    } else if (key == "replicates") {
      if (!value.is_number() || value.as_number() != std::floor(value.as_number()) ||
          value.as_number() < 100 || value.as_number() > 10000) {
        return fail("'replicates' must be an integer in [100, 10000]");
      }
      q.replicates = static_cast<int>(value.as_number());
    } else if (key == "seed") {
      if (!value.is_number() || value.as_number() != std::floor(value.as_number()) ||
          value.as_number() < 0) {
        return fail("'seed' must be a non-negative integer");
      }
      q.seed = static_cast<std::uint64_t>(value.as_number());
    } else if (key == "horizon_miles") {
      if (!value.is_number() || value.as_number() != std::floor(value.as_number()) ||
          value.as_number() < 1 || value.as_number() > 1e12) {
        return fail("'horizon_miles' must be a positive integer of miles");
      }
      q.horizon_miles = value.as_number();
    } else if (key == "id") {
      // Caller correlation id: opaque to the engine, echoed by the protocol
      // layer. Accepted here so one parsed object serves both layers.
    } else {
      return fail("unknown field '" + key + "'");
    }
  }
  if (!saw_kind) return fail("missing required field 'query'");
  return q;
}

std::string cache_key(const query& q, const dataset::database_version& version) {
  const domain_mask deps = q.dependencies();
  std::string key = q.canonical();
  key += '@';
  if ((deps & domain_disengagements) != 0) key += "d" + std::to_string(version.disengagements);
  if ((deps & domain_mileage) != 0) key += "m" + std::to_string(version.mileage);
  if ((deps & domain_accidents) != 0) key += "a" + std::to_string(version.accidents);
  return key;
}

}  // namespace avtk::serve
