// avtk/serve/cache.h
//
// A sharded, memoized result cache for serialized query payloads. Keys are
// version-qualified canonical queries (serve/query.h), values are immutable
// shared strings so a hit never copies the payload and eviction never
// invalidates a response already handed to a reader.
//
// Sharding bounds contention: a key hashes to one shard, each shard holds
// its own mutex, LRU list and map, and capacity is split evenly across
// shards (so eviction is LRU *per shard* — global order is approximate by
// design; tests that need exact LRU semantics configure one shard).
#pragma once

#include <cstddef>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

namespace avtk::serve {

class result_cache {
 public:
  /// `capacity` is the total entry budget across all shards (minimum one
  /// per shard). `shards` must be >= 1.
  explicit result_cache(std::size_t capacity, std::size_t shards = 8);

  result_cache(const result_cache&) = delete;
  result_cache& operator=(const result_cache&) = delete;

  /// The cached payload, refreshing its recency; nullptr on miss.
  std::shared_ptr<const std::string> get(const std::string& key);

  /// Inserts (or refreshes) `key`, evicting the shard's least-recently-used
  /// entries while it is over budget.
  void put(const std::string& key, std::shared_ptr<const std::string> value);

  /// Drops every entry whose key satisfies `pred`. Used on ingest to
  /// reclaim entries stranded under a superseded database version (they
  /// can never be hit again — their version-qualified keys are dead).
  /// Returns the number of entries dropped.
  template <typename Pred>
  std::size_t erase_if(const Pred& pred) {
    std::size_t dropped = 0;
    for (auto& shard : shards_) {
      const std::lock_guard<std::mutex> lock(shard.mutex);
      for (auto it = shard.order.begin(); it != shard.order.end();) {
        if (pred(it->key)) {
          shard.index.erase(it->key);
          it = shard.order.erase(it);
          ++dropped;
        } else {
          ++it;
        }
      }
    }
    return dropped;
  }

  std::size_t size() const;
  std::size_t capacity() const { return capacity_; }
  std::size_t shard_count() const { return shards_.size(); }

  /// Cumulative eviction count (entries displaced by capacity pressure;
  /// erase_if drops are not evictions).
  std::uint64_t evictions() const;

 private:
  struct entry {
    std::string key;
    std::shared_ptr<const std::string> value;
  };
  struct shard {
    mutable std::mutex mutex;
    std::list<entry> order;  ///< front = most recently used
    std::unordered_map<std::string, std::list<entry>::iterator> index;
    std::uint64_t evictions = 0;
  };

  shard& shard_for(const std::string& key);

  std::size_t capacity_;
  std::size_t per_shard_capacity_;
  std::vector<shard> shards_;
};

}  // namespace avtk::serve
