// avtk/serve/index.h
//
// The per-epoch query index behind `--query-exec indexed`: ascending
// posting lists (record indices) over each database domain, keyed by the
// filter axes serve queries actually carry — maker and year for all three
// domains, plus tag and category for disengagements.
//
// A filtered query turns into one selection per domain: the applicable
// posting lists are intersected (all lists are ascending, so the
// intersection is ascending too — record order, and therefore every
// payload byte, matches the naive filter-then-copy oracle exactly), and a
// single-axis filter borrows its posting list as a zero-copy span. The
// selections feed a `dataset::database_view`, so execution never
// materializes a filtered failure_database.
//
// Lifetime: the index is built lazily on the first filtered query against
// an epoch and cached on the `store_snapshot` itself (store.h), so it
// shares the snapshot's RCU-by-refcount lifetime — concurrent queries
// share one build, later ingests publish fresh epochs with no index (each
// builds its own on demand), and a superseded epoch's index frees with its
// last pinned reader. Borrowed posting spans are valid for as long as the
// snapshot pin is held, which is exactly how the engine uses them.
//
// Obs surface: `serve.index.builds` / `serve.index.build_ns` /
// `serve.index.bytes` counters, plus one "serve.index.build" span per
// build when a trace is attached.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <span>
#include <string_view>
#include <vector>

#include "dataset/view.h"
#include "nlp/ontology.h"
#include "obs/trace.h"
#include "serve/query.h"

namespace avtk::serve {

/// The `year` filter selects by event time where the record carries one,
/// falling back to the DMV release year for undated records. Shared by the
/// index build and the naive filter oracle — one definition, one
/// semantics.
inline int disengagement_year(const dataset::disengagement_record& d) {
  if (const auto bucket = d.month_bucket()) return bucket->year;
  return d.report_year;
}

inline int accident_year(const dataset::accident_record& a) {
  return a.event_date ? a.event_date->year : a.report_year;
}

/// The records one domain contributes to a filtered query: either the
/// whole domain (no filter touches it) or an ascending index selection.
/// When the selection is a single posting list it is borrowed zero-copy
/// from the index; an intersection owns its storage.
class domain_selection {
 public:
  /// Whole domain — no restriction.
  domain_selection() = default;

  static domain_selection borrow(std::span<const std::uint32_t> posting) {
    domain_selection s;
    s.restricted_ = true;
    s.borrowed_ = posting;
    return s;
  }
  static domain_selection own(dataset::selection sel) {
    domain_selection s;
    s.restricted_ = true;
    s.use_owned_ = true;
    s.owned_ = std::move(sel);
    return s;
  }

  bool restricted() const { return restricted_; }

  /// The selection span, or nullopt for "whole domain". Computed from the
  /// owned storage on each call, so moving a domain_selection cannot leave
  /// a stale span behind.
  std::optional<std::span<const std::uint32_t>> span() const {
    if (!restricted_) return std::nullopt;
    if (use_owned_) return std::span<const std::uint32_t>(owned_);
    return borrowed_;
  }

 private:
  bool restricted_ = false;
  bool use_owned_ = false;
  std::span<const std::uint32_t> borrowed_;
  dataset::selection owned_;
};

/// All three domain selections for one query. Keep this alive for as long
/// as the view built from it is in use (the view borrows the owned
/// selections' storage).
struct query_selection {
  domain_selection disengagements;
  domain_selection mileage;
  domain_selection accidents;

  dataset::database_view view(const dataset::failure_database& db) const {
    return dataset::database_view(db, disengagements.span(), mileage.span(),
                                  accidents.span());
  }
};

/// Immutable posting-list index over one frozen database state.
class query_index {
 public:
  /// Selections for `q`'s filters. Mileage and accidents are restricted by
  /// maker/year only — a tag or category filter narrows the event set, not
  /// the exposure it is normalized by (same contract as the naive oracle).
  /// Filter values absent from the corpus yield empty selections.
  query_selection select(const query& q) const;

  /// Approximate heap footprint of the posting lists, for the
  /// serve.index.bytes counter.
  std::size_t bytes() const { return bytes_; }

 private:
  friend std::unique_ptr<const query_index> build_query_index(
      const dataset::failure_database& db, obs::trace* trace, std::string_view span_label);

  std::map<dataset::manufacturer, dataset::selection> dis_by_maker_;
  std::map<dataset::manufacturer, dataset::selection> mil_by_maker_;
  std::map<dataset::manufacturer, dataset::selection> acc_by_maker_;
  std::map<int, dataset::selection> dis_by_year_;
  std::map<int, dataset::selection> mil_by_year_;
  std::map<int, dataset::selection> acc_by_year_;
  std::map<nlp::fault_tag, dataset::selection> dis_by_tag_;
  std::map<nlp::failure_category, dataset::selection> dis_by_category_;
  std::size_t bytes_ = 0;
};

/// One pass per domain; records serve.index.* metrics and a
/// "serve.index.build" span when `trace` is non-null. A non-empty
/// `span_label` suffixes the span name ("serve.index.build.<label>") —
/// the sharded store labels each shard's builds "s<i>" so a slow build is
/// attributable to its shard.
std::unique_ptr<const query_index> build_query_index(const dataset::failure_database& db,
                                                     obs::trace* trace,
                                                     std::string_view span_label = {});

}  // namespace avtk::serve
