#include "serve/store.h"

#include <algorithm>
#include <type_traits>
#include <utility>

#include "obs/clock.h"
#include "serve/index.h"

namespace avtk::serve {

store_snapshot::store_snapshot(dataset::failure_database db, std::uint64_t epoch,
                               std::string index_span_label)
    : db_(std::move(db)), epoch_(epoch), index_span_label_(std::move(index_span_label)) {}

store_snapshot::~store_snapshot() = default;

const query_index& store_snapshot::index(obs::trace* trace) const {
  // Fast path: one acquire load once some caller has built and published.
  if (const query_index* built = index_ptr_.load(std::memory_order_acquire)) {
    return *built;
  }
  std::call_once(index_once_, [&] {
    index_ = build_query_index(db_, trace, index_span_label_);
    index_ptr_.store(index_.get(), std::memory_order_release);
  });
  return *index_ptr_.load(std::memory_order_acquire);
}

snapshot_store::snapshot_store(dataset::failure_database db, obs::trace* trace,
                               std::string span_label)
    : published_(std::make_shared<const store_snapshot>(std::move(db), 0, span_label)),
      trace_(trace),
      span_label_(span_label),
      commit_span_name_(span_label.empty() ? "serve.snapshot.commit"
                                           : "serve.snapshot.commit." + span_label),
      commits_(obs::metrics().get_counter("serve.snapshot.commits")),
      commit_ns_(obs::metrics().get_counter("serve.snapshot.commit_ns")),
      retired_(obs::metrics().get_counter("serve.snapshot.retired")) {
  obs::metrics().set_gauge("serve.snapshot.epoch", 0.0);
}

snapshot_ptr snapshot_store::commit(
    const std::function<void(dataset::failure_database&)>& mutate) {
  const obs::stopwatch watch;
  const std::lock_guard<std::mutex> lock(commit_mutex_);
  obs::scoped_span span(trace_, commit_span_name_);

  // Build the next epoch off to the side. The copy shares all three
  // domain arrays; the first add_* per domain inside `mutate` clones that
  // domain and only that domain.
  const auto current = published_.load(std::memory_order_acquire);
  dataset::failure_database next = current->db();
  mutate(next);

  auto snap = std::make_shared<const store_snapshot>(std::move(next), current->epoch() + 1,
                                                     span_label_);
  published_.store(snap, std::memory_order_release);

  // `current` is now retired from service; it frees when its last pinned
  // reader drops (possibly right here, if nobody holds it).
  retired_.add();
  commits_.add();
  commit_ns_.add(static_cast<std::uint64_t>(watch.elapsed_ns()));
  obs::metrics().set_gauge("serve.snapshot.epoch", static_cast<double>(snap->epoch()));
  span.close();
  return snap;
}

namespace {

std::string shard_metric(std::size_t shard, const char* suffix) {
  return "serve.shard." + std::to_string(shard) + "." + suffix;
}

std::uint64_t version_sum(const dataset::database_version& v) {
  return v.disengagements + v.mileage + v.accidents;
}

}  // namespace

sharded_store::sharded_store(dataset::failure_database db, std::size_t shards,
                             obs::trace* trace) {
  if (shards == 0) shards = 1;

  // Global-id counters start past the seed corpus so ingested records sort
  // after every seeded one — the same order a single store appends in.
  next_dis_id_.store(db.disengagements().size());
  next_mil_id_.store(db.mileage().size());
  next_acc_id_.store(db.accidents().size());

  if (shards == 1) {
    // Degenerate layout: adopt the database whole. No partition copy, no
    // span labels — byte- and behavior-identical to a bare snapshot_store,
    // including structural sharing with the caller's arrays.
    shards_.push_back(std::make_unique<snapshot_store>(std::move(db), trace));
  } else {
    // Partition in corpus order. The no-id add_* overloads would re-number
    // from each shard's local size, so records carry their global ids
    // explicitly (for a seed corpus, id == original index).
    std::vector<dataset::failure_database> parts(shards);
    const auto& dis = db.disengagements();
    const auto& dis_ids = db.disengagement_ids();
    for (std::size_t i = 0; i < dis.size(); ++i) {
      parts[shard_of(dis[i].maker, shards)].add_disengagement(dis[i], dis_ids[i]);
    }
    const auto& mil = db.mileage();
    const auto& mil_ids = db.mileage_ids();
    for (std::size_t i = 0; i < mil.size(); ++i) {
      parts[shard_of(mil[i].maker, shards)].add_mileage(mil[i], mil_ids[i]);
    }
    const auto& acc = db.accidents();
    const auto& acc_ids = db.accident_ids();
    for (std::size_t i = 0; i < acc.size(); ++i) {
      parts[shard_of(acc[i].maker, shards)].add_accident(acc[i], acc_ids[i]);
    }
    // Conserve the seed's version vector: the replayed adds leave each
    // shard at its record counts, but the seed may sit above its counts
    // (Stage-III relabels bump versions without adding records). Park the
    // surplus on shard 0 so the composite sum — what responses report and
    // cache keys encode — is byte-identical to the single-store oracle.
    const auto& seed_v = db.version();
    const auto& v0 = parts[0].version();
    parts[0].set_version({v0.disengagements + (seed_v.disengagements - dis.size()),
                          v0.mileage + (seed_v.mileage - mil.size()),
                          v0.accidents + (seed_v.accidents - acc.size())});
    shards_.reserve(shards);
    for (std::size_t s = 0; s < shards; ++s) {
      shards_.push_back(std::make_unique<snapshot_store>(std::move(parts[s]), trace,
                                                         "s" + std::to_string(s)));
    }
  }

  shard_commits_.reserve(shards_.size());
  shard_commit_ns_.reserve(shards_.size());
  shard_records_.reserve(shards_.size());
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    shard_commits_.push_back(&obs::metrics().get_counter(shard_metric(s, "commits")));
    shard_commit_ns_.push_back(&obs::metrics().get_counter(shard_metric(s, "commit_ns")));
    shard_records_.push_back(&obs::metrics().get_counter(shard_metric(s, "records")));
    obs::metrics().set_gauge(shard_metric(s, "epoch"), 0.0);
  }
  // The shared gauge was last set by the last shard's constructor; with
  // every shard at epoch 0 the sum is 0 regardless, but restate it so the
  // sharded semantics (epoch sum) own the gauge from here on.
  obs::metrics().set_gauge("serve.snapshot.epoch", 0.0);
}

composite_snapshot sharded_store::pin() const {
  composite_snapshot comp;
  comp.shards.reserve(shards_.size());
  comp.epochs.reserve(shards_.size());
  for (const auto& shard : shards_) {
    snapshot_ptr snap = shard->pin();
    comp.version.disengagements += snap->version().disengagements;
    comp.version.mileage += snap->version().mileage;
    comp.version.accidents += snap->version().accidents;
    comp.epoch += snap->epoch();
    comp.epochs.push_back(snap->epoch());
    comp.shards.push_back(std::move(snap));
  }
  return comp;
}

std::uint64_t sharded_store::epoch() const {
  std::uint64_t sum = 0;
  for (const auto& shard : shards_) sum += shard->epoch();
  return sum;
}

std::vector<std::uint64_t> sharded_store::epochs() const {
  std::vector<std::uint64_t> out;
  out.reserve(shards_.size());
  for (const auto& shard : shards_) out.push_back(shard->epoch());
  return out;
}

snapshot_ptr sharded_store::commit(
    std::size_t shard, const std::function<void(dataset::failure_database&)>& mutate) {
  const obs::stopwatch watch;
  std::uint64_t records_before = 0;
  std::uint64_t records_after = 0;
  snapshot_ptr snap = shards_[shard]->commit([&](dataset::failure_database& db) {
    records_before = version_sum(db.version());
    mutate(db);
    records_after = version_sum(db.version());
  });

  shard_commits_[shard]->add();
  shard_commit_ns_[shard]->add(static_cast<std::uint64_t>(watch.elapsed_ns()));
  if (records_after > records_before) {
    shard_records_[shard]->add(records_after - records_before);
  }
  obs::metrics().set_gauge(shard_metric(shard, "epoch"), static_cast<double>(snap->epoch()));
  // The inner commit set serve.snapshot.epoch to this *shard's* epoch;
  // overwrite with the store-wide sum, which is what the gauge means under
  // sharding (and equals the shard epoch when K == 1).
  const std::uint64_t sum = epoch_sum_.fetch_add(1) + 1;
  obs::metrics().set_gauge("serve.snapshot.epoch", static_cast<double>(sum));
  return snap;
}

std::shared_ptr<const merge_plan> sharded_store::plan_for(const composite_snapshot& comp) const {
  const std::lock_guard<std::mutex> lock(plan_mutex_);
  if (plan_ && plan_epochs_ == comp.epochs) return plan_;

  auto plan = std::make_shared<merge_plan>();
  plan->pins = comp.shards;

  // Gather (global id, record ptr) pairs from every shard, then sort by
  // id — reproducing original corpus order. A full sort (rather than a
  // K-way merge of per-shard runs) tolerates per-shard id sequences that
  // are not ascending, which concurrent multi-writer ingest can produce
  // (ids are allocated before the shard commit lock is taken).
  const auto gather = [](auto member_records, auto member_ids, const auto& pins, auto& out) {
    using ptr_type = std::decay_t<decltype(out[0])>;
    std::vector<std::pair<std::uint64_t, ptr_type>> pairs;
    for (const auto& pin : pins) {
      const auto& records = (pin->db().*member_records)();
      const auto& ids = (pin->db().*member_ids)();
      for (std::size_t i = 0; i < records.size(); ++i) {
        pairs.emplace_back(ids[i], &records[i]);
      }
    }
    std::sort(pairs.begin(), pairs.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    out.reserve(pairs.size());
    for (const auto& [id, ptr] : pairs) out.push_back(ptr);
  };
  gather(&dataset::failure_database::disengagements,
         &dataset::failure_database::disengagement_ids, plan->pins, plan->disengagements);
  gather(&dataset::failure_database::mileage, &dataset::failure_database::mileage_ids,
         plan->pins, plan->mileage);
  gather(&dataset::failure_database::accidents, &dataset::failure_database::accident_ids,
         plan->pins, plan->accidents);

  plan_epochs_ = comp.epochs;
  plan_ = std::move(plan);
  return plan_;
}

}  // namespace avtk::serve
