#include "serve/store.h"

#include <utility>

#include "obs/clock.h"
#include "serve/index.h"

namespace avtk::serve {

store_snapshot::store_snapshot(dataset::failure_database db, std::uint64_t epoch)
    : db_(std::move(db)), epoch_(epoch) {}

store_snapshot::~store_snapshot() = default;

const query_index& store_snapshot::index(obs::trace* trace) const {
  // Fast path: one acquire load once some caller has built and published.
  if (const query_index* built = index_ptr_.load(std::memory_order_acquire)) {
    return *built;
  }
  std::call_once(index_once_, [&] {
    index_ = build_query_index(db_, trace);
    index_ptr_.store(index_.get(), std::memory_order_release);
  });
  return *index_ptr_.load(std::memory_order_acquire);
}

snapshot_store::snapshot_store(dataset::failure_database db, obs::trace* trace)
    : published_(std::make_shared<const store_snapshot>(std::move(db), 0)),
      trace_(trace),
      commits_(obs::metrics().get_counter("serve.snapshot.commits")),
      commit_ns_(obs::metrics().get_counter("serve.snapshot.commit_ns")),
      retired_(obs::metrics().get_counter("serve.snapshot.retired")) {
  obs::metrics().set_gauge("serve.snapshot.epoch", 0.0);
}

snapshot_ptr snapshot_store::commit(
    const std::function<void(dataset::failure_database&)>& mutate) {
  const obs::stopwatch watch;
  const std::lock_guard<std::mutex> lock(commit_mutex_);
  obs::scoped_span span(trace_, "serve.snapshot.commit");

  // Build the next epoch off to the side. The copy shares all three
  // domain arrays; the first add_* per domain inside `mutate` clones that
  // domain and only that domain.
  const auto current = published_.load(std::memory_order_acquire);
  dataset::failure_database next = current->db();
  mutate(next);

  auto snap = std::make_shared<const store_snapshot>(std::move(next), current->epoch() + 1);
  published_.store(snap, std::memory_order_release);

  // `current` is now retired from service; it frees when its last pinned
  // reader drops (possibly right here, if nobody holds it).
  retired_.add();
  commits_.add();
  commit_ns_.add(static_cast<std::uint64_t>(watch.elapsed_ns()));
  obs::metrics().set_gauge("serve.snapshot.epoch", static_cast<double>(snap->epoch()));
  span.close();
  return snap;
}

}  // namespace avtk::serve
