// avtk/serve/engine.h
//
// The embedded analytics query engine: ingests a consolidated
// failure_database once, then answers typed Stage-IV queries (serve/query.h)
// from a fixed-size worker pool through a sharded, memoized result cache.
//
// Consistency model: the database is guarded by a shared_mutex — queries
// execute under a shared lock, appends under an exclusive lock. A query
// reads the per-domain version vector and computes under one shared lock
// acquisition, so a cached payload is always consistent with the version in
// its key. Appending to one domain bumps only that domain's version, which
// (a) redirects dependent queries to fresh cache keys and (b) eagerly drops
// the now-unreachable dependent entries; results derived from untouched
// domains keep serving from cache.
//
// Every query records an obs span (when a trace is attached) and hit/miss,
// latency and cache-occupancy metrics in the global obs registry under the
// "serve." prefix.
#pragma once

#include <cstdint>
#include <future>
#include <memory>
#include <shared_mutex>
#include <string>

#include "dataset/database.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "serve/cache.h"
#include "serve/query.h"
#include "serve/thread_pool.h"

namespace avtk::serve {

struct engine_config {
  /// Worker threads for submit(); 0 means hardware concurrency.
  unsigned threads = 0;
  /// Total result-cache entries across shards.
  std::size_t cache_capacity = 1024;
  /// Cache shards (1 gives exact global LRU; more bounds lock contention).
  std::size_t cache_shards = 8;
  /// When non-null, every executed query records a "serve.query.<kind>"
  /// span here (cache hits record "serve.hit.<kind>").
  obs::trace* trace = nullptr;
};

/// The outcome of one query. `payload` is the serialized JSON payload —
/// shared with the cache, byte-identical between the cold computation and
/// every subsequent warm hit.
struct query_response {
  std::shared_ptr<const std::string> payload;
  std::string canonical;               ///< canonicalized query
  dataset::database_version version;   ///< database version answered against
  bool cache_hit = false;
  std::int64_t latency_ns = 0;
};

class query_engine {
 public:
  explicit query_engine(dataset::failure_database db, engine_config config = {});

  query_engine(const query_engine&) = delete;
  query_engine& operator=(const query_engine&) = delete;

  /// Executes `q` on the calling thread, consulting the cache first.
  /// Safe to call from any number of threads concurrently.
  query_response execute(const query& q);

  /// Executes `q` on the worker pool.
  std::future<query_response> submit(query q);

  /// Incremental ingest: appends one record, bumps that domain's version
  /// and drops cache entries that depended on the domain.
  void append_disengagement(dataset::disengagement_record rec);
  void append_mileage(dataset::mileage_record rec);
  void append_accident(dataset::accident_record rec);

  dataset::database_version version() const;

  std::size_t cache_size() const { return cache_.size(); }
  std::uint64_t cache_evictions() const { return cache_.evictions(); }
  unsigned threads() const { return pool_.size(); }

 private:
  void invalidate_dependents(char domain_letter);

  mutable std::shared_mutex db_mutex_;
  dataset::failure_database db_;
  result_cache cache_;
  thread_pool pool_;
  obs::trace* trace_;

  // Registered once; counter references are pointer-stable for the
  // registry's lifetime, so the hot path pays one atomic add per event.
  obs::counter& queries_;
  obs::counter& hits_;
  obs::counter& misses_;
  obs::counter& appends_;
  obs::counter& query_ns_;
};

}  // namespace avtk::serve
