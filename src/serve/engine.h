// avtk/serve/engine.h
//
// The embedded analytics query engine: ingests a consolidated
// failure_database once, then answers typed Stage-IV queries (serve/query.h)
// from a fixed-size worker pool through a sharded, memoized result cache.
//
// Consistency model: snapshot isolation over an epoch-published store
// (serve/store.h). The database is never locked for reading — a query
// pins the currently published immutable snapshot with one atomic
// shared_ptr load and computes entirely against that frozen state, so
// concurrent ingests never stall queries and a query can never observe a
// torn or in-progress ingest. The per-domain version vector a response
// reports (and the cache key it is memoized under) is the pinned
// snapshot's by construction, so a cached payload is always consistent
// with the version in its key.
//
// Ingests build the next epoch off to the side — the domain arrays are
// copy-on-write, so untouched domains are shared structurally with every
// older epoch — and publish it with a single pointer swap under a
// writer-only commit mutex. The epoch and every version component are
// therefore monotone; a rejected ingest publishes nothing. Appending to
// one domain bumps only that domain's version, which (a) redirects
// dependent queries to fresh cache keys and (b) eagerly drops the
// now-unreachable dependent entries; results derived from untouched
// domains keep serving from cache. Superseded snapshots free when their
// last pinned reader drops (RCU-by-refcount; no reader ever blocks).
//
// With engine_config::shards > 1 the store is partitioned by manufacturer
// (serve/store.h): maker-filtered queries route to one shard, cross-shard
// queries scatter-gather through a global-id merge, ingests commit on the
// one shard a record's maker lives in (parallel across makers), and cache
// keys carry per-shard version components so a maker-A ingest never evicts
// maker-B entries. Payloads stay byte-identical to the single-store
// layout.
//
// Every query records an obs span (when a trace is attached) and hit/miss,
// latency and cache-occupancy metrics in the global obs registry under the
// "serve." prefix; commits additionally record serve.snapshot.* metrics.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <future>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "dataset/database.h"
#include "ingest/processor.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "ocr/document.h"
#include "serve/cache.h"
#include "serve/query.h"
#include "serve/store.h"
#include "serve/thread_pool.h"

namespace avtk::serve {

/// How filtered queries execute. `indexed` (the default) runs builders
/// over zero-copy selection views from the snapshot's lazy query_index;
/// `naive` materializes a filtered failure_database first. Payloads are
/// byte-identical — the naive path is retained as the oracle the CI
/// equivalence gate (check_query_index.py) compares against.
enum class query_exec { naive, indexed };

std::string_view query_exec_name(query_exec e);
std::optional<query_exec> query_exec_from_string(std::string_view s);

struct engine_config {
  /// Worker threads for submit(); 0 means hardware concurrency.
  unsigned threads = 0;
  /// Total result-cache entries across shards.
  std::size_t cache_capacity = 1024;
  /// Cache shards (1 gives exact global LRU; more bounds lock contention).
  std::size_t cache_shards = 8;
  /// When non-null, every executed query records a "serve.query.<kind>"
  /// span here (cache hits record "serve.hit.<kind>"); raw-document
  /// ingestion records "serve.ingest" spans.
  obs::trace* trace = nullptr;
  /// Raw-document ingestion path (ingest_document). `strict` and `trace`
  /// are overridden at construction: a live append always scans strictly,
  /// and the processor shares the engine's trace.
  ingest::processor_config ingest;
  /// Filtered-query execution backend (unfiltered queries are identical
  /// under both).
  query_exec exec = query_exec::indexed;
  /// Snapshot-store shards (serve/store.h). 1 (the default) is the
  /// historical single-store layout; K > 1 partitions records by
  /// manufacturer so ingests for different makers commit in parallel.
  /// Payloads are byte-identical across layouts — the single store is the
  /// oracle the CI sharding gate (check_sharded.py) compares against.
  std::size_t shards = 1;
};

/// The outcome of one query. `payload` is the serialized JSON payload —
/// shared with the cache, byte-identical between the cold computation and
/// every subsequent warm hit.
struct query_response {
  std::shared_ptr<const std::string> payload;
  std::string canonical;               ///< canonicalized query
  dataset::database_version version;   ///< pinned composite's version vector
  std::uint64_t epoch = 0;             ///< commit epoch (sharded: per-shard sum)
  std::vector<std::uint64_t> epochs;   ///< per-shard epochs ({epoch} when shards == 1)
  bool cache_hit = false;
  std::int64_t latency_ns = 0;
};

/// The outcome of ingesting one raw report document. An accepted document
/// reports what it appended and the post-ingest database version; a
/// rejected one carries the quarantine record (index / title / taxonomy
/// code / message) and the version it left untouched.
struct ingest_response {
  std::size_t index = 0;                  ///< ingest submission sequence number
  std::size_t disengagements_added = 0;
  std::size_t mileage_added = 0;
  std::size_t accidents_added = 0;
  std::size_t unknown_tags = 0;           ///< appended records labeled Unknown-T
  bool ocr_retried = false;               ///< the degraded-OCR rung fired
  std::optional<ingest::quarantined_document> reject;
  dataset::database_version version;      ///< post-ingest (reject: untouched)
  std::uint64_t epoch = 0;                ///< committed epoch sum (reject: unchanged)
  std::vector<std::uint64_t> epochs;      ///< per-shard epochs ({epoch} when shards == 1)
  std::int64_t latency_ns = 0;

  bool accepted() const { return !reject.has_value(); }
};

class query_engine {
 public:
  explicit query_engine(dataset::failure_database db, engine_config config = {});

  query_engine(const query_engine&) = delete;
  query_engine& operator=(const query_engine&) = delete;

  /// Executes `q` on the calling thread, consulting the cache first.
  /// Safe to call from any number of threads concurrently.
  query_response execute(const query& q);

  /// Executes `q` on the worker pool.
  std::future<query_response> submit(query q);

  /// Incremental ingest: appends one record, bumps that domain's version
  /// and drops cache entries that depended on the domain.
  void append_disengagement(dataset::disengagement_record rec);
  void append_mileage(dataset::mileage_record rec);
  void append_accident(dataset::accident_record rec);

  /// Raw-document ingestion: runs `delivered` through the shared
  /// ingest::document_processor (strict Stage II scan, per-document
  /// normalization, Stage-III labeling), then commits the surviving
  /// records as one new snapshot epoch. Only the domains the document
  /// actually touched get a version bump — and only their dependent cache
  /// entries are dropped. A faulted document appends nothing, publishes
  /// no epoch, and comes back as a reject; the published snapshot is
  /// untouched. Safe to call from any number of threads; in-flight
  /// queries keep answering against their pinned snapshots throughout.
  ingest_response ingest_document(const ocr::document& delivered,
                                  const ocr::document* pristine = nullptr);

  /// The currently published snapshot of shard 0 (pinned: stays alive and
  /// immutable for as long as the pointer is held, whatever ingests do
  /// meanwhile). Under the default single-shard layout this is *the*
  /// published snapshot; sharded engines expose the composite state
  /// through version()/epoch()/epochs().
  snapshot_ptr snapshot() const { return store_.pin_shard(0); }

  /// Composite version vector / epoch sum — identical to the single-store
  /// values for any serialized request stream.
  dataset::database_version version() const { return store_.pin().version; }
  std::uint64_t epoch() const { return store_.epoch(); }
  /// Per-shard epochs, index = shard id ({epoch()} when shards() == 1).
  std::vector<std::uint64_t> epochs() const { return store_.epochs(); }
  std::size_t shards() const { return store_.shards(); }

  std::size_t cache_size() const { return cache_.size(); }
  std::uint64_t cache_evictions() const { return cache_.evictions(); }
  unsigned threads() const { return pool_.size(); }

 private:
  void invalidate_dependents(char domain_letter);
  void invalidate_dependents(char domain_letter, std::size_t shard);

  sharded_store store_;
  result_cache cache_;
  thread_pool pool_;
  obs::trace* trace_;
  query_exec exec_;
  /// Shared document path for ingest_document(); immutable after
  /// construction, so processing runs outside the database lock.
  ingest::document_processor processor_;
  std::atomic<std::size_t> ingest_seq_{0};

  // Registered once; counter references are pointer-stable for the
  // registry's lifetime, so the hot path pays one atomic add per event.
  obs::counter& queries_;
  obs::counter& hits_;
  obs::counter& misses_;
  obs::counter& appends_;
  obs::counter& query_ns_;
  obs::counter& ingests_;
  obs::counter& ingest_records_;
  obs::counter& ingest_ns_;
};

}  // namespace avtk::serve
