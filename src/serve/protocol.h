// avtk/serve/protocol.h
//
// The line-delimited request/response wire format over a query_engine.
// One JSON request object per input line; one compact JSON response object
// per output line, in request order:
//
//   > {"query": "metrics", "maker": "waymo"}
//   < {"schema":"avtk.serve.v1","ok":true,"query":"metrics?maker=waymo",
//      "version":"d5328.m12382.a42","payload":{...}}
//   > {"query": "nope"}
//   < {"schema":"avtk.serve.v1","ok":false,"code":"parse",
//      "error":"unknown query kind 'nope'"}
//
// Error envelopes carry a machine-readable "code" alongside the human
// message: "parse" for malformed requests, the avtk error_code name
// ("io", "internal", ...) for execution failures. Clients can branch on
// the code without string-matching the message.
//
// Requests may carry an opaque "id" member (string or number) that is
// echoed back. Blank lines and lines starting with '#' are skipped, so a
// scripted batch file can be commented.
//
// Responses are deterministic: the envelope carries no timing and no
// hit/miss flag, so a warm (cached) response is byte-identical to the cold
// one. Hit/miss and latency are observable via the obs metric registry.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <string_view>

#include "serve/engine.h"

namespace avtk::serve {

/// Serve wire schema tag.
inline constexpr std::string_view k_serve_schema = "avtk.serve.v1";

/// Handles one request line synchronously: parse, execute, envelope.
/// Never throws — execution errors become {"ok":false,...} responses.
std::string handle_request_line(query_engine& engine, std::string_view line);

struct serve_loop_stats {
  std::size_t requests = 0;
  std::size_t errors = 0;            ///< total failures (parse + execution)
  std::size_t parse_errors = 0;      ///< malformed request lines
  std::size_t execution_errors = 0;  ///< well-formed queries that failed to run
  std::size_t cache_hits = 0;
};

/// Reads request lines from `in` until EOF, writing one response line per
/// request to `out` in request order. Requests are dispatched to the
/// engine's worker pool and pipelined up to `max_in_flight` deep (0 means
/// 2x the engine's thread count), so independent queries overlap while
/// responses stay ordered.
serve_loop_stats run_serve_loop(query_engine& engine, std::istream& in, std::ostream& out,
                                std::size_t max_in_flight = 0);

}  // namespace avtk::serve
