// avtk/serve/protocol.h
//
// The line-delimited request/response wire format over a query_engine.
// One JSON request object per input line; one compact JSON response object
// per output line, in request order:
//
//   > {"query": "metrics", "maker": "waymo"}
//   < {"schema":"avtk.serve.v1","ok":true,"query":"metrics?maker=waymo",
//      "version":"d5328.m12382.a42","payload":{...}}
//   > {"query": "nope"}
//   < {"schema":"avtk.serve.v1","ok":false,"code":"parse",
//      "error":"unknown query kind 'nope'"}
//
// Error envelopes carry a machine-readable "code" alongside the human
// message: "parse" for malformed requests, the avtk error_code name
// ("io", "internal", ...) for execution failures. Clients can branch on
// the code without string-matching the message.
//
// Requests may carry an opaque "id" member (string or number) that is
// echoed back. Blank lines and lines starting with '#' are skipped, so a
// scripted batch file can be commented.
//
// Raw-document ingestion rides the same protocol: a request whose top-level
// member is "ingest" instead of "query" carries a report document (either a
// bare text string or {"text": ..., "title": ..., "pristine": ...}) and is
// routed through query_engine::ingest_document. An accepted document
// answers with what it appended and the post-ingest version:
//
//   > {"ingest": {"title": "...", "text": "..."}, "id": 7}
//   < {"schema":"avtk.serve.v1","ok":true,"id":7,
//      "ingest":{"index":0,"disengagements":12,"mileage":24,"accidents":0,
//      "unknown_tags":1,"ocr_retried":false},"version":"d5329.m12406.a42"}
//
// A document the processor refuses answers with a structured per-record
// reject envelope — the quarantine taxonomy code at the top level plus a
// "rejects" array (index / title / code / message per refused record) —
// and the database version it left untouched. What happens to the loop
// afterwards is serve_loop_options::on_ingest_error's call (quarantine:
// keep serving with full reject detail; skip: keep serving, drop the
// detail; fail_fast: emit the reject, then abort the loop).
//
// fail_fast abort contract — the response stream is a DETERMINISTIC
// PREFIX of the request stream's answers: every request before the
// rejected ingest is answered, in request order (the ingest barrier
// drains the in-flight window before the abort decision); the reject
// envelope is the final line; nothing after it is ever answered, whatever
// max_in_flight is. Two runs over the same input produce byte-identical
// output up to and including the reject.
//
// Responses are deterministic: the envelope carries no timing and no
// hit/miss flag, so a warm (cached) response is byte-identical to the cold
// one. Hit/miss and latency are observable via the obs metric registry.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <string_view>

#include "serve/engine.h"

namespace avtk::serve {

/// Serve wire schema tag.
inline constexpr std::string_view k_serve_schema = "avtk.serve.v1";

/// Handles one request line synchronously: parse, execute, envelope.
/// Never throws — execution errors become {"ok":false,...} responses.
/// Ingest requests are handled under the quarantine posture (full reject
/// detail, caller keeps going).
std::string handle_request_line(query_engine& engine, std::string_view line);

struct serve_loop_stats {
  std::size_t requests = 0;
  std::size_t errors = 0;            ///< total failures (parse + execution + rejects)
  std::size_t parse_errors = 0;      ///< malformed request lines
  std::size_t execution_errors = 0;  ///< well-formed queries that failed to run
  std::size_t cache_hits = 0;
  std::size_t ingests = 0;           ///< ingest requests (accepted + rejected)
  std::size_t ingest_rejected = 0;   ///< documents the processor refused
  std::size_t ingest_records = 0;    ///< records appended by accepted documents
  bool aborted = false;              ///< fail_fast stopped the loop on a reject
};

struct serve_loop_options {
  /// Pipelining depth for queries (0 means 2x the engine's thread count).
  std::size_t max_in_flight = 0;
  /// What a rejected ingest document does to the loop (see header comment).
  ingest::error_policy on_ingest_error = ingest::error_policy::quarantine;
};

/// Reads request lines from `in` until EOF, writing one response line per
/// request to `out` in request order. Query requests are dispatched to the
/// engine's worker pool and pipelined up to `max_in_flight` deep, so
/// independent queries overlap while responses stay ordered. An ingest
/// request is a write barrier: the in-flight window drains first, then the
/// document is ingested synchronously — every earlier query answers
/// against the pre-ingest database, every later one against the
/// post-ingest version.
serve_loop_stats run_serve_loop(query_engine& engine, std::istream& in, std::ostream& out,
                                const serve_loop_options& options);
serve_loop_stats run_serve_loop(query_engine& engine, std::istream& in, std::ostream& out,
                                std::size_t max_in_flight = 0);

}  // namespace avtk::serve
