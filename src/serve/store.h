// avtk/serve/store.h
//
// The snapshot-isolated failure store behind serve::query_engine.
//
// The store publishes exactly one immutable `store_snapshot` at a time — a
// failure_database frozen at a per-domain version vector, stamped with a
// monotone commit epoch — through a single atomic shared_ptr. Readers
// pin() the published snapshot (one atomic refcounted load, no lock) and
// compute against that frozen state for as long as they hold the pointer;
// a concurrent commit can never change what a pinned reader sees.
//
// Writers never block readers: commit() copies the newest database (three
// refcount bumps — the domain arrays are copy-on-write, dataset/database.h),
// applies the mutation off to the side (cloning only the domains it
// touches; untouched domains stay structurally shared with every older
// epoch), and publishes the result as epoch N+1 with one pointer swap.
// Commits serialize against each other under a writer-only mutex, which
// is what makes the epoch and every version component monotone.
//
// Reclamation is RCU-by-refcount: a superseded snapshot stays alive until
// the last pinned reader drops it, then frees on that reader's thread —
// no quiescent-state tracking, no deferred-free list, and nothing for a
// leak checker to find once the readers are gone.
//
// Obs surface: `serve.snapshot.epoch` gauge (published epoch),
// `serve.snapshot.commits` / `serve.snapshot.commit_ns` /
// `serve.snapshot.retired` counters (retired = snapshots superseded by a
// commit; they free when their last reader unpins), and one
// "serve.snapshot.commit" span per commit when a trace is attached.
//
// `sharded_store` composes K independent snapshot_stores, partitioning
// records by manufacturer (shard_of: enum value mod K). Each shard has its
// own epoch, writer mutex and lazy per-epoch query_index, so ingests for
// different manufacturers commit in parallel and each commit clones only
// ~1/K of a domain array. Every record carries a stable *global id*
// allocated at append time from store-wide counters
// (dataset::failure_database id arrays), which is what lets cross-shard
// queries merge per-shard records back into original corpus order — the
// merged sequence, and therefore every payload byte, is identical to the
// single-store layout. A composite pin is K acquire loads; the composite
// version vector is the component-wise sum of the shard versions, which
// equals the single-store version exactly (every append bumps exactly one
// shard-domain by one). K == 1 degenerates to the current layout: one
// shard holding the database as passed in, structurally shared.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "dataset/database.h"
#include "dataset/view.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace avtk::serve {

class query_index;

/// One immutable published state of the store. Everything a query needs —
/// the records, the per-domain version vector it must report, the commit
/// epoch — is frozen together, so a reader holding the pointer observes
/// exactly one consistent state.
class store_snapshot {
 public:
  // Both out of line: query_index is incomplete here, and the members'
  // cleanup paths need its definition. A non-empty `index_span_label`
  // suffixes this snapshot's index-build span name
  // ("serve.index.build.<label>") — the sharded store labels shard i's
  // snapshots "s<i>".
  store_snapshot(dataset::failure_database db, std::uint64_t epoch,
                 std::string index_span_label = {});
  ~store_snapshot();

  store_snapshot(const store_snapshot&) = delete;
  store_snapshot& operator=(const store_snapshot&) = delete;

  const dataset::failure_database& db() const { return db_; }
  const dataset::database_version& version() const { return db_.version(); }
  std::uint64_t epoch() const { return epoch_; }

  /// The epoch's query index (serve/index.h), built lazily on first use
  /// and cached on the snapshot: concurrent callers share one build (the
  /// fast path after publication is a single acquire load), and the index
  /// frees with the snapshot — same RCU-by-refcount lifetime as the
  /// records it indexes. `trace` receives the build span if this call is
  /// the one that builds.
  const query_index& index(obs::trace* trace = nullptr) const;

 private:
  dataset::failure_database db_;
  std::uint64_t epoch_;
  std::string index_span_label_;

  // Lazy index: call_once builds, the atomic publishes. Mutable because a
  // snapshot is logically immutable — the index is a cache of a pure
  // function of the frozen database.
  mutable std::once_flag index_once_;
  mutable std::unique_ptr<const query_index> index_;
  mutable std::atomic<const query_index*> index_ptr_{nullptr};
};

using snapshot_ptr = std::shared_ptr<const store_snapshot>;

class snapshot_store {
 public:
  /// Publishes `db` as epoch 0. `trace` (optional) receives a
  /// "serve.snapshot.commit" span per commit. A non-empty `span_label`
  /// suffixes the commit span name ("serve.snapshot.commit.<label>") and
  /// the snapshots' index-build spans — the sharded store labels shard i
  /// "s<i>"; a standalone store keeps the historical unlabelled names.
  explicit snapshot_store(dataset::failure_database db, obs::trace* trace = nullptr,
                          std::string span_label = {});

  snapshot_store(const snapshot_store&) = delete;
  snapshot_store& operator=(const snapshot_store&) = delete;

  /// Pins the currently published snapshot: one atomic load, no lock.
  /// Safe from any number of threads; never blocks, not even against a
  /// commit in flight.
  snapshot_ptr pin() const { return published_.load(std::memory_order_acquire); }

  /// The published epoch (0 for a freshly constructed store).
  std::uint64_t epoch() const { return pin()->epoch(); }

  /// Read-copy-update commit: `mutate` receives a private copy of the
  /// newest database (cheap — domain arrays are shared until written) and
  /// the result is published as the next epoch with a single pointer
  /// swap. Commits serialize; readers are never blocked and keep their
  /// pinned epochs. Returns the snapshot it published, so the caller can
  /// report the exact post-commit version vector without re-pinning (a
  /// later commit may already have superseded it).
  snapshot_ptr commit(const std::function<void(dataset::failure_database&)>& mutate);

 private:
  std::atomic<snapshot_ptr> published_;
  std::mutex commit_mutex_;  ///< serializes writers; readers never take it
  obs::trace* trace_;
  std::string span_label_;       ///< "" for a standalone store, "s<i>" per shard
  std::string commit_span_name_; ///< precomputed "serve.snapshot.commit[.label]"

  obs::counter& commits_;
  obs::counter& commit_ns_;
  obs::counter& retired_;
};

/// The shard a manufacturer's records live in: stable enum value mod K.
/// Pure function of (maker, shards), so both layouts of a corpus agree on
/// placement and a router needs no lookup table.
inline std::size_t shard_of(dataset::manufacturer maker, std::size_t shards) {
  return static_cast<std::size_t>(maker) % shards;
}

/// One pinned state of every shard: K snapshot pins taken with K acquire
/// loads (no lock, no cross-shard barrier — concurrent commits on other
/// shards may land between loads, so this is a *composite*, not an atomic
/// cut; per-shard states are each internally consistent and immutable).
/// `version`/`epoch` are component-wise sums over the shards — for any
/// composite observed by a serialized request stream they equal the
/// single-store values exactly.
struct composite_snapshot {
  std::vector<snapshot_ptr> shards;
  dataset::database_version version;  ///< component-wise sum over shards
  std::uint64_t epoch = 0;            ///< sum of per-shard epochs
  std::vector<std::uint64_t> epochs;  ///< per-shard epochs, index = shard id
};

/// A cross-shard merge: per-domain record pointers concatenated back into
/// ascending global-id (original corpus) order, plus the shard pins that
/// keep every pointed-at record alive. view() adapts it to the composed
/// database_view the Stage-IV builders consume. Built once per distinct
/// epochs-vector and cached on the sharded_store; shared by every
/// unfiltered cross-shard query against those epochs.
struct merge_plan {
  std::vector<snapshot_ptr> pins;
  std::vector<const dataset::disengagement_record*> disengagements;
  std::vector<const dataset::mileage_record*> mileage;
  std::vector<const dataset::accident_record*> accidents;

  dataset::database_view view() const {
    return dataset::database_view(disengagements, mileage, accidents);
  }
};

/// K independent snapshot_stores partitioned by manufacturer. Each shard
/// commits under its own writer mutex (parallel ingest for different
/// makers) and clones only its own ~1/K slice of a domain on write. Global
/// record ids are allocated from store-wide counters *before* any shard
/// commit runs, in document order, so cross-shard merges reproduce the
/// single-store record order — and therefore byte-identical payloads —
/// regardless of how shard commits interleave.
///
/// Obs: shared serve.snapshot.* counters aggregate across shards; per-shard
/// serve.shard.<i>.{commits,commit_ns,records} counters and a
/// serve.shard.<i>.epoch gauge attribute work to its shard; the
/// serve.snapshot.epoch gauge tracks the epoch *sum* (maintained here —
/// last-writer-wins per-shard gauge updates would clobber each other).
class sharded_store {
 public:
  /// Partitions `db` into `shards` stores. shards == 1 adopts `db` whole —
  /// zero copies, structural sharing with the caller preserved — and is
  /// byte-and-behavior identical to a bare snapshot_store. For K > 1 the
  /// records are partitioned in corpus order, carrying their global ids.
  sharded_store(dataset::failure_database db, std::size_t shards,
                obs::trace* trace = nullptr);

  sharded_store(const sharded_store&) = delete;
  sharded_store& operator=(const sharded_store&) = delete;

  std::size_t shards() const { return shards_.size(); }
  std::size_t shard_for(dataset::manufacturer maker) const {
    return shard_of(maker, shards_.size());
  }

  /// Pin one shard: a single acquire load, same cost as snapshot_store::pin.
  snapshot_ptr pin_shard(std::size_t shard) const { return shards_[shard]->pin(); }

  /// Pin every shard (K acquire loads) and sum versions/epochs.
  composite_snapshot pin() const;

  /// The published epoch sum / per-shard epochs.
  std::uint64_t epoch() const;
  std::vector<std::uint64_t> epochs() const;

  /// RCU commit on one shard; other shards' writers and all readers
  /// proceed concurrently. Returns the published per-shard snapshot.
  /// Maintains the per-shard obs counters and both epoch gauges.
  snapshot_ptr commit(std::size_t shard,
                      const std::function<void(dataset::failure_database&)>& mutate);

  /// Allocate the next global record id for a domain. Call in document
  /// order *before* handing records to commit() — allocation order is
  /// merge order.
  std::uint64_t next_disengagement_id() { return next_dis_id_.fetch_add(1); }
  std::uint64_t next_mileage_id() { return next_mil_id_.fetch_add(1); }
  std::uint64_t next_accident_id() { return next_acc_id_.fetch_add(1); }

  /// The cross-shard merge plan for `comp`'s epochs: per-domain (id, ptr)
  /// pairs gathered from every shard and sorted by global id. Cached —
  /// repeated pins of unchanged epochs share one plan; any shard advancing
  /// rebuilds. The plan holds its own pins, so it stays valid after `comp`
  /// is dropped.
  std::shared_ptr<const merge_plan> plan_for(const composite_snapshot& comp) const;

 private:
  std::vector<std::unique_ptr<snapshot_store>> shards_;

  std::atomic<std::uint64_t> next_dis_id_{0};
  std::atomic<std::uint64_t> next_mil_id_{0};
  std::atomic<std::uint64_t> next_acc_id_{0};
  std::atomic<std::uint64_t> epoch_sum_{0};

  // Per-shard counters (registry pointers are stable for the process
  // lifetime). records = records appended through commit(), measured as the
  // version-vector delta.
  std::vector<obs::counter*> shard_commits_;
  std::vector<obs::counter*> shard_commit_ns_;
  std::vector<obs::counter*> shard_records_;

  mutable std::mutex plan_mutex_;
  mutable std::vector<std::uint64_t> plan_epochs_;
  mutable std::shared_ptr<const merge_plan> plan_;
};

}  // namespace avtk::serve
