// avtk/serve/store.h
//
// The snapshot-isolated failure store behind serve::query_engine.
//
// The store publishes exactly one immutable `store_snapshot` at a time — a
// failure_database frozen at a per-domain version vector, stamped with a
// monotone commit epoch — through a single atomic shared_ptr. Readers
// pin() the published snapshot (one atomic refcounted load, no lock) and
// compute against that frozen state for as long as they hold the pointer;
// a concurrent commit can never change what a pinned reader sees.
//
// Writers never block readers: commit() copies the newest database (three
// refcount bumps — the domain arrays are copy-on-write, dataset/database.h),
// applies the mutation off to the side (cloning only the domains it
// touches; untouched domains stay structurally shared with every older
// epoch), and publishes the result as epoch N+1 with one pointer swap.
// Commits serialize against each other under a writer-only mutex, which
// is what makes the epoch and every version component monotone.
//
// Reclamation is RCU-by-refcount: a superseded snapshot stays alive until
// the last pinned reader drops it, then frees on that reader's thread —
// no quiescent-state tracking, no deferred-free list, and nothing for a
// leak checker to find once the readers are gone.
//
// Obs surface: `serve.snapshot.epoch` gauge (published epoch),
// `serve.snapshot.commits` / `serve.snapshot.commit_ns` /
// `serve.snapshot.retired` counters (retired = snapshots superseded by a
// commit; they free when their last reader unpins), and one
// "serve.snapshot.commit" span per commit when a trace is attached.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>

#include "dataset/database.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace avtk::serve {

class query_index;

/// One immutable published state of the store. Everything a query needs —
/// the records, the per-domain version vector it must report, the commit
/// epoch — is frozen together, so a reader holding the pointer observes
/// exactly one consistent state.
class store_snapshot {
 public:
  // Both out of line: query_index is incomplete here, and the members'
  // cleanup paths need its definition.
  store_snapshot(dataset::failure_database db, std::uint64_t epoch);
  ~store_snapshot();

  store_snapshot(const store_snapshot&) = delete;
  store_snapshot& operator=(const store_snapshot&) = delete;

  const dataset::failure_database& db() const { return db_; }
  const dataset::database_version& version() const { return db_.version(); }
  std::uint64_t epoch() const { return epoch_; }

  /// The epoch's query index (serve/index.h), built lazily on first use
  /// and cached on the snapshot: concurrent callers share one build (the
  /// fast path after publication is a single acquire load), and the index
  /// frees with the snapshot — same RCU-by-refcount lifetime as the
  /// records it indexes. `trace` receives the build span if this call is
  /// the one that builds.
  const query_index& index(obs::trace* trace = nullptr) const;

 private:
  dataset::failure_database db_;
  std::uint64_t epoch_;

  // Lazy index: call_once builds, the atomic publishes. Mutable because a
  // snapshot is logically immutable — the index is a cache of a pure
  // function of the frozen database.
  mutable std::once_flag index_once_;
  mutable std::unique_ptr<const query_index> index_;
  mutable std::atomic<const query_index*> index_ptr_{nullptr};
};

using snapshot_ptr = std::shared_ptr<const store_snapshot>;

class snapshot_store {
 public:
  /// Publishes `db` as epoch 0. `trace` (optional) receives a
  /// "serve.snapshot.commit" span per commit.
  explicit snapshot_store(dataset::failure_database db, obs::trace* trace = nullptr);

  snapshot_store(const snapshot_store&) = delete;
  snapshot_store& operator=(const snapshot_store&) = delete;

  /// Pins the currently published snapshot: one atomic load, no lock.
  /// Safe from any number of threads; never blocks, not even against a
  /// commit in flight.
  snapshot_ptr pin() const { return published_.load(std::memory_order_acquire); }

  /// The published epoch (0 for a freshly constructed store).
  std::uint64_t epoch() const { return pin()->epoch(); }

  /// Read-copy-update commit: `mutate` receives a private copy of the
  /// newest database (cheap — domain arrays are shared until written) and
  /// the result is published as the next epoch with a single pointer
  /// swap. Commits serialize; readers are never blocked and keep their
  /// pinned epochs. Returns the snapshot it published, so the caller can
  /// report the exact post-commit version vector without re-pinning (a
  /// later commit may already have superseded it).
  snapshot_ptr commit(const std::function<void(dataset::failure_database&)>& mutate);

 private:
  std::atomic<snapshot_ptr> published_;
  std::mutex commit_mutex_;  ///< serializes writers; readers never take it
  obs::trace* trace_;

  obs::counter& commits_;
  obs::counter& commit_ns_;
  obs::counter& retired_;
};

}  // namespace avtk::serve
