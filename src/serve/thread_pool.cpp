#include "serve/thread_pool.h"

#include <algorithm>

namespace avtk::serve {

thread_pool::thread_pool(unsigned threads) {
  const unsigned n = std::max(threads, 1u);
  workers_.reserve(n);
  for (unsigned i = 0; i < n; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

thread_pool::~thread_pool() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  wake_.notify_all();
  for (auto& w : workers_) w.join();
}

void thread_pool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      wake_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

}  // namespace avtk::serve
