#include "serve/index.h"

#include <algorithm>

#include "obs/clock.h"
#include "obs/metrics.h"

namespace avtk::serve {

namespace {

const dataset::selection& empty_selection() {
  static const dataset::selection empty;
  return empty;
}

template <typename Key>
const dataset::selection& posting(const std::map<Key, dataset::selection>& postings,
                                  const Key& key) {
  const auto it = postings.find(key);
  return it != postings.end() ? it->second : empty_selection();
}

// Intersection of ascending posting lists, ascending result. Iterates the
// smallest list and binary-searches the rest, so a narrow axis (one tag,
// one maker-year) keeps the cost near its own match count.
domain_selection intersect(std::vector<const dataset::selection*> lists) {
  std::sort(lists.begin(), lists.end(),
            [](const auto* a, const auto* b) { return a->size() < b->size(); });
  dataset::selection out;
  out.reserve(lists.front()->size());
  for (const std::uint32_t idx : *lists.front()) {
    bool in_all = true;
    for (std::size_t i = 1; i < lists.size(); ++i) {
      if (!std::binary_search(lists[i]->begin(), lists[i]->end(), idx)) {
        in_all = false;
        break;
      }
    }
    if (in_all) out.push_back(idx);
  }
  return domain_selection::own(std::move(out));
}

// No filter on the domain → whole domain; one applicable posting list →
// borrow it zero-copy; several → intersect.
domain_selection combine(std::vector<const dataset::selection*> lists) {
  if (lists.empty()) return domain_selection();
  if (lists.size() == 1) return domain_selection::borrow(*lists.front());
  return intersect(std::move(lists));
}

template <typename Key>
std::size_t postings_bytes(const std::map<Key, dataset::selection>& postings) {
  std::size_t total = 0;
  for (const auto& [key, sel] : postings) {
    total += sizeof(key) + sizeof(sel) + sel.capacity() * sizeof(std::uint32_t);
  }
  return total;
}

}  // namespace

query_selection query_index::select(const query& q) const {
  query_selection out;

  std::vector<const dataset::selection*> dis;
  if (q.maker) dis.push_back(&posting(dis_by_maker_, *q.maker));
  if (q.year) dis.push_back(&posting(dis_by_year_, *q.year));
  if (q.tag) dis.push_back(&posting(dis_by_tag_, *q.tag));
  if (q.category) dis.push_back(&posting(dis_by_category_, *q.category));
  out.disengagements = combine(std::move(dis));

  // Mileage and accidents: maker/year only — tag and category narrow the
  // event set, never the exposure it is normalized by.
  std::vector<const dataset::selection*> mil;
  if (q.maker) mil.push_back(&posting(mil_by_maker_, *q.maker));
  if (q.year) mil.push_back(&posting(mil_by_year_, *q.year));
  out.mileage = combine(std::move(mil));

  std::vector<const dataset::selection*> acc;
  if (q.maker) acc.push_back(&posting(acc_by_maker_, *q.maker));
  if (q.year) acc.push_back(&posting(acc_by_year_, *q.year));
  out.accidents = combine(std::move(acc));

  return out;
}

std::unique_ptr<const query_index> build_query_index(const dataset::failure_database& db,
                                                     obs::trace* trace,
                                                     std::string_view span_label) {
  const obs::stopwatch watch;
  std::string span_name = "serve.index.build";
  if (!span_label.empty()) span_name += "." + std::string(span_label);
  obs::scoped_span span(trace, span_name);

  auto index = std::make_unique<query_index>();
  const auto& disengagements = db.disengagements();
  for (std::uint32_t i = 0; i < disengagements.size(); ++i) {
    const auto& d = disengagements[i];
    index->dis_by_maker_[d.maker].push_back(i);
    index->dis_by_year_[disengagement_year(d)].push_back(i);
    index->dis_by_tag_[d.tag].push_back(i);
    index->dis_by_category_[d.category].push_back(i);
  }
  const auto& mileage = db.mileage();
  for (std::uint32_t i = 0; i < mileage.size(); ++i) {
    const auto& m = mileage[i];
    index->mil_by_maker_[m.maker].push_back(i);
    index->mil_by_year_[m.month.year].push_back(i);
  }
  const auto& accidents = db.accidents();
  for (std::uint32_t i = 0; i < accidents.size(); ++i) {
    const auto& a = accidents[i];
    index->acc_by_maker_[a.maker].push_back(i);
    index->acc_by_year_[accident_year(a)].push_back(i);
  }

  index->bytes_ = postings_bytes(index->dis_by_maker_) + postings_bytes(index->mil_by_maker_) +
                  postings_bytes(index->acc_by_maker_) + postings_bytes(index->dis_by_year_) +
                  postings_bytes(index->mil_by_year_) + postings_bytes(index->acc_by_year_) +
                  postings_bytes(index->dis_by_tag_) + postings_bytes(index->dis_by_category_);

  obs::metrics().get_counter("serve.index.builds").add();
  obs::metrics().get_counter("serve.index.build_ns").add(
      static_cast<std::uint64_t>(watch.elapsed_ns()));
  obs::metrics().get_counter("serve.index.bytes").add(index->bytes_);
  span.close();
  return index;
}

}  // namespace avtk::serve
