#include "serve/engine.h"

#include <algorithm>
#include <cmath>
#include <span>
#include <thread>
#include <type_traits>
#include <utility>

#include "core/analysis.h"
#include "obs/clock.h"
#include "obs/json.h"
#include "reliability/mcf.h"
#include "reliability/nhpp.h"
#include "serve/index.h"

namespace avtk::serve {

namespace json = obs::json;
using dataset::manufacturer;

namespace {

// JSON has no NaN/Inf; degenerate statistics serialize as null.
json::value num(double v) { return std::isfinite(v) ? json::value(v) : json::value(nullptr); }
json::value opt_num(const std::optional<double>& v) {
  return v ? num(*v) : json::value(nullptr);
}

// Year semantics (event time, report-year fallback) are shared with the
// index build: serve/index.h's disengagement_year / accident_year.

bool matches(const dataset::disengagement_record& d, const query& q) {
  if (q.maker && d.maker != *q.maker) return false;
  if (q.year && disengagement_year(d) != *q.year) return false;
  if (q.tag && d.tag != *q.tag) return false;
  if (q.category && d.category != *q.category) return false;
  return true;
}

bool needs_filter(const query& q) {
  return q.maker || q.year || q.tag || q.category;
}

// The naive oracle: materializes the filtered database the analysis
// builders run against. Mileage and accidents are restricted by maker/year
// only: a tag or category filter narrows the event set, not the exposure
// it is normalized by — so under a tag/category-only filter those domains
// are adopted structurally (a shared_ptr bump each, no element copies).
dataset::failure_database filter_database(const dataset::failure_database& db, const query& q) {
  dataset::failure_database out;
  for (const auto& d : db.disengagements()) {
    if (matches(d, q)) out.add_disengagement(d);
  }
  if (!q.maker && !q.year) {
    out.share_mileage_from(db);
    out.share_accidents_from(db);
    return out;
  }
  for (const auto& m : db.mileage()) {
    if (q.maker && m.maker != *q.maker) continue;
    if (q.year && m.month.year != *q.year) continue;
    out.add_mileage(m);
  }
  for (const auto& a : db.accidents()) {
    if (q.maker && a.maker != *q.maker) continue;
    if (q.year && accident_year(a) != *q.year) continue;
    out.add_accident(a);
  }
  return out;
}

std::vector<manufacturer> makers_for(const dataset::database_view& db, const query& q) {
  if (q.maker) return {*q.maker};
  return db.manufacturers_present();  // enum order: deterministic
}

json::value metrics_payload(const dataset::database_view& db,
                            const std::vector<manufacturer>& makers) {
  json::array rows;
  for (const auto maker : makers) {
    const auto m = core::compute_metrics(db, maker);
    if (m.total_miles <= 0 && m.total_disengagements == 0 && m.total_accidents == 0) continue;
    rows.emplace_back(json::object{
        {"maker", json::value(std::string(dataset::manufacturer_id(maker)))},
        {"miles", num(m.total_miles)},
        {"disengagements", json::value(m.total_disengagements)},
        {"accidents", json::value(m.total_accidents)},
        {"overall_dpm", num(m.overall_dpm)},
        {"median_dpm", opt_num(m.median_dpm)},
        {"dpa", opt_num(m.dpa)},
        {"apm", opt_num(m.apm)},
        {"apmi", opt_num(m.apmi)},
        {"vs_human", opt_num(m.vs_human)},
    });
  }
  return json::object{{"makers", json::value(std::move(rows))}};
}

json::value tags_payload(const dataset::database_view& db,
                         const std::vector<manufacturer>& makers) {
  json::array rows;
  for (const auto& row : core::build_tag_fractions(db, makers)) {
    json::object fractions;
    for (const auto& [tag, fraction] : row.fractions) {
      fractions.emplace_back(std::string(nlp::tag_id(tag)), num(fraction));
    }
    rows.emplace_back(json::object{
        {"maker", json::value(std::string(dataset::manufacturer_id(row.maker)))},
        {"total", json::value(row.total)},
        {"fractions", json::value(std::move(fractions))},
    });
  }
  return json::object{{"makers", json::value(std::move(rows))}};
}

json::value categories_payload(const dataset::database_view& db,
                               const std::vector<manufacturer>& makers) {
  json::array rows;
  for (const auto& row : core::build_table4(db, makers)) {
    rows.emplace_back(json::object{
        {"maker", json::value(std::string(dataset::manufacturer_id(row.maker)))},
        {"planner_controller", num(row.planner_controller)},
        {"perception_recognition", num(row.perception_recognition)},
        {"system", num(row.system)},
        {"unknown", num(row.unknown)},
        {"total", json::value(row.total)},
    });
  }
  return json::object{{"makers", json::value(std::move(rows))}};
}

json::value modality_payload(const dataset::database_view& db,
                             const std::vector<manufacturer>& makers) {
  json::array rows;
  for (const auto& row : core::build_table5(db, makers)) {
    rows.emplace_back(json::object{
        {"maker", json::value(std::string(dataset::manufacturer_id(row.maker)))},
        {"automatic", num(row.automatic)},
        {"manual", num(row.manual)},
        {"planned", num(row.planned)},
        {"total", json::value(row.total)},
    });
  }
  return json::object{{"makers", json::value(std::move(rows))}};
}

json::value trend_payload(const dataset::database_view& db,
                          const std::vector<manufacturer>& makers) {
  json::array rows;
  for (const auto maker : makers) {
    const auto series = core::build_monthly_trend(db, maker);
    if (series.empty()) continue;
    json::array months;
    for (const auto& point : series) {
      months.emplace_back(json::object{
          {"month", json::value(point.month.to_string())},
          {"miles", num(point.miles)},
          {"disengagements", json::value(point.disengagements)},
          {"dpm", num(point.dpm())},
      });
    }
    rows.emplace_back(json::object{
        {"maker", json::value(std::string(dataset::manufacturer_id(maker)))},
        {"months", json::value(std::move(months))},
    });
  }
  return json::object{{"makers", json::value(std::move(rows))}};
}

json::value fit_payload(const dataset::database_view& db,
                        const std::vector<manufacturer>& makers, std::size_t min_samples) {
  constexpr double k_outlier_cut_s = 300.0;  // build_fig11's default
  json::array rows;
  for (const auto& fit : core::build_fig11(db, makers, min_samples, k_outlier_cut_s)) {
    // Exponential baseline over the same cleaned sample the Weibull fits
    // used, for the paper's Weibull-vs-exponential comparison.
    auto rts = db.reaction_times(fit.maker);
    std::erase_if(rts, [&](double t) { return !(t > 0) || t > k_outlier_cut_s; });
    json::value exponential(nullptr);
    if (rts.size() >= 2) {
      const auto exp_fit = stats::exponential_dist::fit(rts);
      exponential = json::object{{"mean", num(exp_fit.mean())}};
    }
    rows.emplace_back(json::object{
        {"maker", json::value(std::string(dataset::manufacturer_id(fit.maker)))},
        {"n", json::value(fit.n)},
        {"weibull", json::value(json::object{{"shape", num(fit.weibull.shape())},
                                             {"scale", num(fit.weibull.scale())}})},
        {"exp_weibull", json::value(json::object{{"shape", num(fit.exp_weibull.shape())},
                                                 {"scale", num(fit.exp_weibull.scale())},
                                                 {"power", num(fit.exp_weibull.power())}})},
        {"exponential", std::move(exponential)},
        {"ks_p_weibull", num(fit.ks_p_weibull)},
        {"ks_p_exp_weibull", num(fit.ks_p_exp_weibull)},
    });
  }
  return json::object{{"makers", json::value(std::move(rows))}};
}

json::value compare_payload(const dataset::database_view& db,
                            const std::vector<manufacturer>& makers) {
  json::array rows;
  std::optional<double> best_dpm;
  std::optional<double> worst_dpm;
  std::optional<manufacturer> best_maker;
  std::optional<manufacturer> worst_maker;
  for (const auto& row : core::build_table7(db, makers)) {
    rows.emplace_back(json::object{
        {"maker", json::value(std::string(dataset::manufacturer_id(row.maker)))},
        {"median_dpm", opt_num(row.median_dpm)},
        {"median_apm", opt_num(row.median_apm)},
        {"vs_human", opt_num(row.vs_human)},
    });
    if (row.median_dpm && *row.median_dpm > 0) {
      if (!best_dpm || *row.median_dpm < *best_dpm) {
        best_dpm = row.median_dpm;
        best_maker = row.maker;
      }
      if (!worst_dpm || *row.median_dpm > *worst_dpm) {
        worst_dpm = row.median_dpm;
        worst_maker = row.maker;
      }
    }
  }
  json::object out{{"rows", json::value(std::move(rows))}};
  if (best_maker && worst_maker) {
    out.emplace_back("best", json::value(std::string(dataset::manufacturer_id(*best_maker))));
    out.emplace_back("worst", json::value(std::string(dataset::manufacturer_id(*worst_maker))));
    // The paper's "~100x disparity" headline, live from the database.
    out.emplace_back("median_dpm_spread", num(*worst_dpm / *best_dpm));
  }
  return out;
}

// Bound on curve points per maker in an mcf payload: the full Waymo curve
// has thousands of steps, which would dominate every response and cache
// entry for no analytical gain.
constexpr std::size_t k_mcf_payload_points = 200;

json::value mcf_payload(const dataset::database_view& db, const query& q) {
  json::array rows;
  for (const auto& mp : reliability::extract_processes(db)) {
    // Per-VIN processes where the reports expose them; the fleet process is
    // the single-unit fallback (bands then degenerate, as they should).
    const std::span<const reliability::event_process> units =
        mp.vehicles.empty() ? std::span(&mp.fleet, 1) : std::span(mp.vehicles);
    reliability::mcf_options options;
    options.seed = q.seed;
    options.replicates = q.replicates;
    options.max_points = k_mcf_payload_points;
    const auto estimate = reliability::estimate_mcf(units, options);
    json::array points;
    for (const auto& p : estimate.points) {
      points.emplace_back(json::object{
          {"miles", num(p.miles)},
          {"events", json::value(p.events)},
          {"at_risk", json::value(p.at_risk)},
          {"mcf", num(p.mcf)},
          {"variance", num(p.variance)},
          {"lower", num(p.lower)},
          {"upper", num(p.upper)},
      });
    }
    rows.emplace_back(json::object{
        {"maker", json::value(std::string(dataset::manufacturer_id(mp.maker)))},
        {"units", json::value(estimate.units)},
        {"events", json::value(estimate.total_events)},
        {"points", json::value(std::move(points))},
    });
  }
  return json::object{
      {"replicates", json::value(q.replicates)},
      {"seed", json::value(q.seed)},
      {"makers", json::value(std::move(rows))},
  };
}

json::value nhpp_fit_json(const reliability::nhpp_fit& f, bool power_law) {
  json::object out;
  if (power_law) {
    out.emplace_back("shape", num(f.shape));
    out.emplace_back("scale", num(f.scale));
  } else {
    out.emplace_back("alpha", num(f.alpha));
    out.emplace_back("gamma", num(f.gamma));
  }
  out.emplace_back("log_likelihood", num(f.log_likelihood));
  out.emplace_back("aic", num(f.aic));
  out.emplace_back("converged", json::value(f.converged));
  return out;
}

json::value nhpp_payload(const dataset::database_view& db, const query& q) {
  json::array rows;
  for (const auto& mp : reliability::extract_processes(db)) {
    // Trend models run on the fleet-level superposed process, so the
    // extrapolation answers "expected events over the next H fleet miles".
    const auto analysis = reliability::fit_trend(std::span(&mp.fleet, 1));
    const double at = mp.fleet.exposure;
    rows.emplace_back(json::object{
        {"maker", json::value(std::string(dataset::manufacturer_id(mp.maker)))},
        {"events", json::value(analysis.events)},
        {"exposure_miles", num(analysis.exposure)},
        {"hpp", json::value(json::object{
                    {"rate", num(analysis.hpp.rate)},
                    {"log_likelihood", num(analysis.hpp.log_likelihood)},
                    {"aic", num(analysis.hpp.aic)},
                })},
        {"power_law", nhpp_fit_json(analysis.power_law, true)},
        {"log_linear", nhpp_fit_json(analysis.log_linear, false)},
        {"laplace", json::value(json::object{
                        {"statistic", num(analysis.laplace.statistic)},
                        {"p_value", num(analysis.laplace.p_value)},
                    })},
        {"preferred", json::value(std::string(analysis.preferred()))},
        {"expected_events",
         json::value(json::object{
             {"horizon_miles", num(q.horizon_miles)},
             {"hpp", num(reliability::expected_events(analysis, "hpp", at, q.horizon_miles))},
             {"power_law",
              num(reliability::expected_events(analysis, "power_law", at, q.horizon_miles))},
             {"log_linear",
              num(reliability::expected_events(analysis, "log_linear", at, q.horizon_miles))},
         })},
    });
  }
  return json::object{
      {"horizon_miles", num(q.horizon_miles)},
      {"makers", json::value(std::move(rows))},
  };
}

// Sharded cache key: canonical form + '@' + one "s<i>:" segment per
// *dependent* shard (the maker's shard for a maker-filtered query, every
// shard otherwise), each carrying the dependent-domain version components
// of that shard. A commit on shard i bumps only shard i's components, so
// keys that don't carry an "s<i>:" segment — other makers' entries — stay
// live across the ingest.
std::string sharded_cache_key(const query& q, const composite_snapshot& comp,
                              std::optional<std::size_t> maker_shard) {
  const domain_mask deps = q.dependencies();
  std::string key = q.canonical();
  key += '@';
  const auto add_shard = [&](std::size_t s) {
    const auto& v = comp.shards[s]->version();
    key += "s" + std::to_string(s) + ":";
    if ((deps & domain_disengagements) != 0) key += "d" + std::to_string(v.disengagements);
    if ((deps & domain_mileage) != 0) key += "m" + std::to_string(v.mileage);
    if ((deps & domain_accidents) != 0) key += "a" + std::to_string(v.accidents);
  };
  if (maker_shard) {
    add_shard(*maker_shard);
  } else {
    for (std::size_t s = 0; s < comp.shards.size(); ++s) add_shard(s);
  }
  return key;
}

/// Cross-shard indexed execution: per-shard index selections merged into
/// per-domain pointer lists sorted by global id — the same record sequence
/// the single store's selection view iterates. Keep the object alive while
/// the view built from it is in use; the caller's composite pin keeps the
/// pointed-at records alive.
struct merged_selection {
  std::vector<const dataset::disengagement_record*> disengagements;
  std::vector<const dataset::mileage_record*> mileage;
  std::vector<const dataset::accident_record*> accidents;

  dataset::database_view view() const {
    return dataset::database_view(disengagements, mileage, accidents);
  }
};

merged_selection merge_indexed(const composite_snapshot& comp, const query& q,
                               obs::trace* trace) {
  merged_selection out;
  std::vector<query_selection> sels;
  sels.reserve(comp.shards.size());
  for (const auto& snap : comp.shards) sels.push_back(snap->index(trace).select(q));

  const auto gather = [&](auto member_records, auto member_ids, auto member_sel,
                          auto& out_vec) {
    using ptr_type = std::decay_t<decltype(out_vec[0])>;
    std::vector<std::pair<std::uint64_t, ptr_type>> pairs;
    for (std::size_t s = 0; s < comp.shards.size(); ++s) {
      const auto& db = comp.shards[s]->db();
      const auto& records = (db.*member_records)();
      const auto& ids = (db.*member_ids)();
      if (const auto span = (sels[s].*member_sel).span()) {
        for (const std::uint32_t i : *span) pairs.emplace_back(ids[i], &records[i]);
      } else {
        for (std::size_t i = 0; i < records.size(); ++i) pairs.emplace_back(ids[i], &records[i]);
      }
    }
    std::sort(pairs.begin(), pairs.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    out_vec.reserve(pairs.size());
    for (const auto& [id, ptr] : pairs) out_vec.push_back(ptr);
  };
  gather(&dataset::failure_database::disengagements,
         &dataset::failure_database::disengagement_ids, &query_selection::disengagements,
         out.disengagements);
  gather(&dataset::failure_database::mileage, &dataset::failure_database::mileage_ids,
         &query_selection::mileage, out.mileage);
  gather(&dataset::failure_database::accidents, &dataset::failure_database::accident_ids,
         &query_selection::accidents, out.accidents);
  return out;
}

// The naive oracle over a composed (cross-shard merged) view. The merged
// iteration order is global-id — original corpus — order, so the filtered
// copy appends records in exactly the sequence the single-store
// filter_database produces. There is no single backing database to adopt
// unfiltered domains from structurally, so they are copied; the payload
// bytes are unaffected.
dataset::failure_database filter_view(const dataset::database_view& db, const query& q) {
  dataset::failure_database out;
  for (const auto& d : db.disengagements()) {
    if (matches(d, q)) out.add_disengagement(d);
  }
  for (const auto& m : db.mileage()) {
    if (q.maker && m.maker != *q.maker) continue;
    if (q.year && m.month.year != *q.year) continue;
    out.add_mileage(m);
  }
  for (const auto& a : db.accidents()) {
    if (q.maker && a.maker != *q.maker) continue;
    if (q.year && accident_year(a) != *q.year) continue;
    out.add_accident(a);
  }
  return out;
}

// A live append always scans strictly (the batch quarantine policies'
// validations must not be bypassable over the wire), and the processor
// shares the engine's trace.
ingest::processor_config make_ingest_config(const engine_config& config) {
  ingest::processor_config pcfg = config.ingest;
  pcfg.strict = true;
  pcfg.trace = config.trace;
  return pcfg;
}

// Dispatches over an already-restricted view: filters were resolved by the
// caller (indexed selections or the materialized naive database), so every
// builder below just runs over whatever `db` exposes.
json::value execute_payload(const dataset::database_view& db, const query& q) {
  const auto makers = makers_for(db, q);
  switch (q.kind) {
    case query_kind::metrics: return metrics_payload(db, makers);
    case query_kind::tags: return tags_payload(db, makers);
    case query_kind::categories: return categories_payload(db, makers);
    case query_kind::modality: return modality_payload(db, makers);
    case query_kind::trend: return trend_payload(db, makers);
    case query_kind::fit: return fit_payload(db, makers, q.min_samples);
    case query_kind::compare: return compare_payload(db, makers);
    case query_kind::mcf: return mcf_payload(db, q);
    case query_kind::nhpp: return nhpp_payload(db, q);
  }
  return json::object{};
}

}  // namespace

std::string_view query_exec_name(query_exec e) {
  switch (e) {
    case query_exec::naive: return "naive";
    case query_exec::indexed: return "indexed";
  }
  return "indexed";
}

std::optional<query_exec> query_exec_from_string(std::string_view s) {
  if (s == "naive") return query_exec::naive;
  if (s == "indexed") return query_exec::indexed;
  return std::nullopt;
}

query_engine::query_engine(dataset::failure_database db, engine_config config)
    : store_(std::move(db), config.shards, config.trace),
      cache_(config.cache_capacity, config.cache_shards),
      pool_(config.threads != 0 ? config.threads
                                : std::max(std::thread::hardware_concurrency(), 1u)),
      trace_(config.trace),
      exec_(config.exec),
      processor_(make_ingest_config(config)),
      queries_(obs::metrics().get_counter("serve.queries")),
      hits_(obs::metrics().get_counter("serve.cache_hits")),
      misses_(obs::metrics().get_counter("serve.cache_misses")),
      appends_(obs::metrics().get_counter("serve.appends")),
      query_ns_(obs::metrics().get_counter("serve.query_ns")),
      ingests_(obs::metrics().get_counter("serve.ingests")),
      ingest_records_(obs::metrics().get_counter("serve.ingest.records")),
      ingest_ns_(obs::metrics().get_counter("serve.ingest_ns")) {}

query_response query_engine::execute(const query& q) {
  const obs::stopwatch watch;
  queries_.add();

  query_response out;
  out.canonical = q.canonical();

  // Pin the published composite: one atomic refcounted load per shard, no
  // lock. Everything below — the version the response reports, the cache
  // key, the computation — is against these frozen per-shard epochs; a
  // commit landing meanwhile publishes a *new* shard snapshot and cannot
  // touch these.
  const auto comp = store_.pin();
  out.version = comp.version;
  out.epoch = comp.epoch;
  out.epochs = comp.epochs;

  const bool single = store_.shards() == 1;
  // A maker-filtered query reads exactly one shard — route it there; its
  // cache key then depends on that shard alone.
  const std::optional<std::size_t> maker_shard =
      (!single && q.maker) ? std::optional<std::size_t>(store_.shard_for(*q.maker))
                           : std::nullopt;

  const std::string key =
      single ? cache_key(q, out.version) : sharded_cache_key(q, comp, maker_shard);
  if (auto cached = cache_.get(key)) {
    hits_.add();
    const obs::scoped_span span(trace_,
                                "serve.hit." + std::string(query_kind_name(q.kind)));
    out.payload = std::move(cached);
    out.cache_hit = true;
    out.latency_ns = watch.elapsed_ns();
    query_ns_.add(static_cast<std::uint64_t>(out.latency_ns));
    return out;
  }

  misses_.add();
  obs::scoped_span span(trace_, "serve.query." + std::string(query_kind_name(q.kind)));
  json::value result;
  if (single || maker_shard) {
    // Single-shard execution: the historical paths, against the one shard
    // that holds every record the query can read.
    const auto& snap = single ? comp.shards[0] : comp.shards[*maker_shard];
    if (!needs_filter(q)) {
      result = execute_payload(snap->db(), q);
    } else if (exec_ == query_exec::indexed) {
      // Zero-copy path: selections from the snapshot's lazy index feed a
      // view over the pinned arrays; nothing is materialized. The selection
      // object owns any intersected index lists, so it must outlive the
      // view — both live to the end of this block, under the snapshot pin.
      const auto sel = snap->index(trace_).select(q);
      const auto view = sel.view(snap->db());
      result = execute_payload(view, q);
    } else {
      const auto filtered = filter_database(snap->db(), q);
      result = execute_payload(filtered, q);
    }
  } else if (!needs_filter(q)) {
    // Cross-shard scatter-gather, unfiltered: the cached merge plan
    // (rebuilt only when a shard's epoch advances) composes every shard's
    // records back into corpus order; no record is copied.
    const auto plan = store_.plan_for(comp);
    result = execute_payload(plan->view(), q);
  } else if (exec_ == query_exec::indexed) {
    // Cross-shard, filtered, indexed: per-shard index selections merged by
    // global id — same record sequence as the single store's selection
    // view. The merged pointer lists must outlive the view; both live to
    // the end of this block, under the composite pin.
    const auto merged = merge_indexed(comp, q, trace_);
    result = execute_payload(merged.view(), q);
  } else {
    // Cross-shard, filtered, naive: materialize the filtered database from
    // the merged (corpus-order) view — the oracle the sharded indexed path
    // is gated against.
    const auto plan = store_.plan_for(comp);
    const auto filtered = filter_view(plan->view(), q);
    result = execute_payload(filtered, q);
  }
  auto payload = std::make_shared<const std::string>(result.dump());
  span.close();

  cache_.put(key, payload);
  obs::metrics().set_gauge("serve.cache_size", static_cast<double>(cache_.size()));
  obs::metrics().set_gauge("serve.cache_evictions", static_cast<double>(cache_.evictions()));

  out.payload = std::move(payload);
  out.cache_hit = false;
  out.latency_ns = watch.elapsed_ns();
  query_ns_.add(static_cast<std::uint64_t>(out.latency_ns));
  return out;
}

std::future<query_response> query_engine::submit(query q) {
  return pool_.submit([this, q = std::move(q)] { return execute(q); });
}

// Appends route to the one shard the record's maker lives in and commit
// under that shard's writer mutex alone — appends for different shards
// proceed in parallel. The global id is allocated *before* the commit (the
// counter is the merge order); under the single-shard layout the no-id
// overload keeps the historical id == position invariant exactly.
void query_engine::append_disengagement(dataset::disengagement_record rec) {
  const std::size_t shard = store_.shard_for(rec.maker);
  if (store_.shards() == 1) {
    store_.commit(0, [&](dataset::failure_database& db) { db.add_disengagement(std::move(rec)); });
  } else {
    const std::uint64_t id = store_.next_disengagement_id();
    store_.commit(shard,
                  [&](dataset::failure_database& db) { db.add_disengagement(std::move(rec), id); });
  }
  appends_.add();
  invalidate_dependents('d', shard);
}

void query_engine::append_mileage(dataset::mileage_record rec) {
  const std::size_t shard = store_.shard_for(rec.maker);
  if (store_.shards() == 1) {
    store_.commit(0, [&](dataset::failure_database& db) { db.add_mileage(std::move(rec)); });
  } else {
    const std::uint64_t id = store_.next_mileage_id();
    store_.commit(shard,
                  [&](dataset::failure_database& db) { db.add_mileage(std::move(rec), id); });
  }
  appends_.add();
  invalidate_dependents('m', shard);
}

void query_engine::append_accident(dataset::accident_record rec) {
  const std::size_t shard = store_.shard_for(rec.maker);
  if (store_.shards() == 1) {
    store_.commit(0, [&](dataset::failure_database& db) { db.add_accident(std::move(rec)); });
  } else {
    const std::uint64_t id = store_.next_accident_id();
    store_.commit(shard,
                  [&](dataset::failure_database& db) { db.add_accident(std::move(rec), id); });
  }
  appends_.add();
  invalidate_dependents('a', shard);
}

ingest_response query_engine::ingest_document(const ocr::document& delivered,
                                              const ocr::document* pristine) {
  const obs::stopwatch watch;
  ingests_.add();

  ingest_response out;
  out.index = ingest_seq_.fetch_add(1, std::memory_order_relaxed);

  // Stage II/III run before the commit — the processor is immutable and
  // no lock is involved, so concurrent queries keep serving while the
  // document is scanned, normalized and labeled.
  obs::scoped_span span(trace_, "serve.ingest");
  auto processed = processor_.process(delivered, pristine, out.index, span.id());
  out.ocr_retried = processed.ocr_retried;
  out.unknown_tags = processed.unknown_tags;
  if (out.ocr_retried) obs::metrics().get_counter("serve.ingest.retried").add();

  if (!processed.accepted()) {
    out.reject = std::move(processed.fault);
    obs::metrics()
        .get_counter("serve.ingest.rejected." + std::string(error_code_name(out.reject->code)))
        .add();
    // Untouched: a reject publishes nothing — no commit, no epoch, no
    // version bump; the snapshot readers hold stays the published one.
    const auto comp = store_.pin();
    out.version = comp.version;
    out.epoch = comp.epoch;
    out.epochs = comp.epochs;
    out.latency_ns = watch.elapsed_ns();
    ingest_ns_.add(static_cast<std::uint64_t>(out.latency_ns));
    span.close();
    return out;
  }

  out.disengagements_added = processed.disengagements.size();
  out.mileage_added = processed.mileage.size();
  out.accidents_added = processed.accidents.size();
  const std::size_t shards = store_.shards();
  // Shards a domain of this document touched, for targeted invalidation.
  std::vector<bool> dis_touched(shards, false);
  std::vector<bool> mil_touched(shards, false);
  std::vector<bool> acc_touched(shards, false);
  if (shards == 1) {
    // One commit per document: all surviving records land in a single new
    // epoch, so a query observes either none or all of the document.
    const auto snap = store_.commit(0, [&](dataset::failure_database& db) {
      for (auto& d : processed.disengagements) db.add_disengagement(std::move(d));
      for (auto& m : processed.mileage) db.add_mileage(std::move(m));
      for (auto& a : processed.accidents) db.add_accident(std::move(a));
    });
    out.version = snap->version();
    out.epoch = snap->epoch();
    out.epochs = {snap->epoch()};
    dis_touched[0] = out.disengagements_added > 0;
    mil_touched[0] = out.mileage_added > 0;
    acc_touched[0] = out.accidents_added > 0;
  } else {
    // Group the document's records by shard, ids allocated in document
    // order — the same per-domain order a single store appends in. Then one
    // commit per *touched* shard: real workloads' documents are
    // single-maker, so this is one commit, and the document stays atomic
    // per shard (a query observes none or all of its records on a shard).
    std::vector<std::vector<std::pair<dataset::disengagement_record, std::uint64_t>>> dis(shards);
    std::vector<std::vector<std::pair<dataset::mileage_record, std::uint64_t>>> mil(shards);
    std::vector<std::vector<std::pair<dataset::accident_record, std::uint64_t>>> acc(shards);
    for (auto& d : processed.disengagements) {
      const std::size_t s = store_.shard_for(d.maker);
      dis[s].emplace_back(std::move(d), store_.next_disengagement_id());
    }
    for (auto& m : processed.mileage) {
      const std::size_t s = store_.shard_for(m.maker);
      mil[s].emplace_back(std::move(m), store_.next_mileage_id());
    }
    for (auto& a : processed.accidents) {
      const std::size_t s = store_.shard_for(a.maker);
      acc[s].emplace_back(std::move(a), store_.next_accident_id());
    }
    for (std::size_t s = 0; s < shards; ++s) {
      if (dis[s].empty() && mil[s].empty() && acc[s].empty()) continue;
      store_.commit(s, [&](dataset::failure_database& db) {
        for (auto& [d, id] : dis[s]) db.add_disengagement(std::move(d), id);
        for (auto& [m, id] : mil[s]) db.add_mileage(std::move(m), id);
        for (auto& [a, id] : acc[s]) db.add_accident(std::move(a), id);
      });
      dis_touched[s] = !dis[s].empty();
      mil_touched[s] = !mil[s].empty();
      acc_touched[s] = !acc[s].empty();
    }
    // Re-pin the composite for the response. Under a serialized request
    // stream no other commit can land in between, so the version/epoch
    // sums are exactly the post-ingest state — the same values the single
    // store reports.
    const auto comp = store_.pin();
    out.version = comp.version;
    out.epoch = comp.epoch;
    out.epochs = comp.epochs;
  }
  const std::size_t records =
      out.disengagements_added + out.mileage_added + out.accidents_added;
  appends_.add(records);
  ingest_records_.add(records);

  // Only the (domain, shard) pairs the document touched got a version
  // bump, so only their dependents go stale.
  for (std::size_t s = 0; s < shards; ++s) {
    if (dis_touched[s]) invalidate_dependents('d', s);
    if (mil_touched[s]) invalidate_dependents('m', s);
    if (acc_touched[s]) invalidate_dependents('a', s);
  }

  out.latency_ns = watch.elapsed_ns();
  ingest_ns_.add(static_cast<std::uint64_t>(out.latency_ns));
  span.close();
  return out;
}

// Cache keys end in "@<version components>" where a component letter is
// present iff the query depends on that domain. Bumping domain X strands
// every key carrying an X component (its version number is now stale), so
// those — and only those — are dropped; entries over untouched domains
// keep serving.
void query_engine::invalidate_dependents(char domain_letter) {
  cache_.erase_if([domain_letter](const std::string& key) {
    const auto at = key.rfind('@');
    return at != std::string::npos && key.find(domain_letter, at + 1) != std::string::npos;
  });
  obs::metrics().set_gauge("serve.cache_size", static_cast<double>(cache_.size()));
}

// Sharded invalidation: a key goes stale only if its version suffix
// carries the bumped domain's letter *inside the bumped shard's segment*
// ("s<i>:..."). Segments are delimited by 's' (the canonical prefix ends at
// the last '@'; after it only shard tags and domain components appear), so
// entries over other shards — other makers — survive the ingest.
void query_engine::invalidate_dependents(char domain_letter, std::size_t shard) {
  if (store_.shards() == 1) {
    invalidate_dependents(domain_letter);
    return;
  }
  const std::string tag = "s" + std::to_string(shard) + ":";
  cache_.erase_if([&](const std::string& key) {
    const auto at = key.rfind('@');
    if (at == std::string::npos) return false;
    const auto seg = key.find(tag, at + 1);
    if (seg == std::string::npos) return false;
    const auto seg_start = seg + tag.size();
    const auto seg_end = key.find('s', seg_start);  // next shard tag, or npos
    const auto letter = key.find(domain_letter, seg_start);
    return letter != std::string::npos && (seg_end == std::string::npos || letter < seg_end);
  });
  obs::metrics().set_gauge("serve.cache_size", static_cast<double>(cache_.size()));
}

}  // namespace avtk::serve
