#include "serve/engine.h"

#include <algorithm>
#include <cmath>
#include <span>
#include <thread>
#include <utility>

#include "core/analysis.h"
#include "obs/clock.h"
#include "obs/json.h"
#include "reliability/mcf.h"
#include "reliability/nhpp.h"
#include "serve/index.h"

namespace avtk::serve {

namespace json = obs::json;
using dataset::manufacturer;

namespace {

// JSON has no NaN/Inf; degenerate statistics serialize as null.
json::value num(double v) { return std::isfinite(v) ? json::value(v) : json::value(nullptr); }
json::value opt_num(const std::optional<double>& v) {
  return v ? num(*v) : json::value(nullptr);
}

// Year semantics (event time, report-year fallback) are shared with the
// index build: serve/index.h's disengagement_year / accident_year.

bool matches(const dataset::disengagement_record& d, const query& q) {
  if (q.maker && d.maker != *q.maker) return false;
  if (q.year && disengagement_year(d) != *q.year) return false;
  if (q.tag && d.tag != *q.tag) return false;
  if (q.category && d.category != *q.category) return false;
  return true;
}

bool needs_filter(const query& q) {
  return q.maker || q.year || q.tag || q.category;
}

// The naive oracle: materializes the filtered database the analysis
// builders run against. Mileage and accidents are restricted by maker/year
// only: a tag or category filter narrows the event set, not the exposure
// it is normalized by — so under a tag/category-only filter those domains
// are adopted structurally (a shared_ptr bump each, no element copies).
dataset::failure_database filter_database(const dataset::failure_database& db, const query& q) {
  dataset::failure_database out;
  for (const auto& d : db.disengagements()) {
    if (matches(d, q)) out.add_disengagement(d);
  }
  if (!q.maker && !q.year) {
    out.share_mileage_from(db);
    out.share_accidents_from(db);
    return out;
  }
  for (const auto& m : db.mileage()) {
    if (q.maker && m.maker != *q.maker) continue;
    if (q.year && m.month.year != *q.year) continue;
    out.add_mileage(m);
  }
  for (const auto& a : db.accidents()) {
    if (q.maker && a.maker != *q.maker) continue;
    if (q.year && accident_year(a) != *q.year) continue;
    out.add_accident(a);
  }
  return out;
}

std::vector<manufacturer> makers_for(const dataset::database_view& db, const query& q) {
  if (q.maker) return {*q.maker};
  return db.manufacturers_present();  // enum order: deterministic
}

json::value metrics_payload(const dataset::database_view& db,
                            const std::vector<manufacturer>& makers) {
  json::array rows;
  for (const auto maker : makers) {
    const auto m = core::compute_metrics(db, maker);
    if (m.total_miles <= 0 && m.total_disengagements == 0 && m.total_accidents == 0) continue;
    rows.emplace_back(json::object{
        {"maker", json::value(std::string(dataset::manufacturer_id(maker)))},
        {"miles", num(m.total_miles)},
        {"disengagements", json::value(m.total_disengagements)},
        {"accidents", json::value(m.total_accidents)},
        {"overall_dpm", num(m.overall_dpm)},
        {"median_dpm", opt_num(m.median_dpm)},
        {"dpa", opt_num(m.dpa)},
        {"apm", opt_num(m.apm)},
        {"apmi", opt_num(m.apmi)},
        {"vs_human", opt_num(m.vs_human)},
    });
  }
  return json::object{{"makers", json::value(std::move(rows))}};
}

json::value tags_payload(const dataset::database_view& db,
                         const std::vector<manufacturer>& makers) {
  json::array rows;
  for (const auto& row : core::build_tag_fractions(db, makers)) {
    json::object fractions;
    for (const auto& [tag, fraction] : row.fractions) {
      fractions.emplace_back(std::string(nlp::tag_id(tag)), num(fraction));
    }
    rows.emplace_back(json::object{
        {"maker", json::value(std::string(dataset::manufacturer_id(row.maker)))},
        {"total", json::value(row.total)},
        {"fractions", json::value(std::move(fractions))},
    });
  }
  return json::object{{"makers", json::value(std::move(rows))}};
}

json::value categories_payload(const dataset::database_view& db,
                               const std::vector<manufacturer>& makers) {
  json::array rows;
  for (const auto& row : core::build_table4(db, makers)) {
    rows.emplace_back(json::object{
        {"maker", json::value(std::string(dataset::manufacturer_id(row.maker)))},
        {"planner_controller", num(row.planner_controller)},
        {"perception_recognition", num(row.perception_recognition)},
        {"system", num(row.system)},
        {"unknown", num(row.unknown)},
        {"total", json::value(row.total)},
    });
  }
  return json::object{{"makers", json::value(std::move(rows))}};
}

json::value modality_payload(const dataset::database_view& db,
                             const std::vector<manufacturer>& makers) {
  json::array rows;
  for (const auto& row : core::build_table5(db, makers)) {
    rows.emplace_back(json::object{
        {"maker", json::value(std::string(dataset::manufacturer_id(row.maker)))},
        {"automatic", num(row.automatic)},
        {"manual", num(row.manual)},
        {"planned", num(row.planned)},
        {"total", json::value(row.total)},
    });
  }
  return json::object{{"makers", json::value(std::move(rows))}};
}

json::value trend_payload(const dataset::database_view& db,
                          const std::vector<manufacturer>& makers) {
  json::array rows;
  for (const auto maker : makers) {
    const auto series = core::build_monthly_trend(db, maker);
    if (series.empty()) continue;
    json::array months;
    for (const auto& point : series) {
      months.emplace_back(json::object{
          {"month", json::value(point.month.to_string())},
          {"miles", num(point.miles)},
          {"disengagements", json::value(point.disengagements)},
          {"dpm", num(point.dpm())},
      });
    }
    rows.emplace_back(json::object{
        {"maker", json::value(std::string(dataset::manufacturer_id(maker)))},
        {"months", json::value(std::move(months))},
    });
  }
  return json::object{{"makers", json::value(std::move(rows))}};
}

json::value fit_payload(const dataset::database_view& db,
                        const std::vector<manufacturer>& makers, std::size_t min_samples) {
  constexpr double k_outlier_cut_s = 300.0;  // build_fig11's default
  json::array rows;
  for (const auto& fit : core::build_fig11(db, makers, min_samples, k_outlier_cut_s)) {
    // Exponential baseline over the same cleaned sample the Weibull fits
    // used, for the paper's Weibull-vs-exponential comparison.
    auto rts = db.reaction_times(fit.maker);
    std::erase_if(rts, [&](double t) { return !(t > 0) || t > k_outlier_cut_s; });
    json::value exponential(nullptr);
    if (rts.size() >= 2) {
      const auto exp_fit = stats::exponential_dist::fit(rts);
      exponential = json::object{{"mean", num(exp_fit.mean())}};
    }
    rows.emplace_back(json::object{
        {"maker", json::value(std::string(dataset::manufacturer_id(fit.maker)))},
        {"n", json::value(fit.n)},
        {"weibull", json::value(json::object{{"shape", num(fit.weibull.shape())},
                                             {"scale", num(fit.weibull.scale())}})},
        {"exp_weibull", json::value(json::object{{"shape", num(fit.exp_weibull.shape())},
                                                 {"scale", num(fit.exp_weibull.scale())},
                                                 {"power", num(fit.exp_weibull.power())}})},
        {"exponential", std::move(exponential)},
        {"ks_p_weibull", num(fit.ks_p_weibull)},
        {"ks_p_exp_weibull", num(fit.ks_p_exp_weibull)},
    });
  }
  return json::object{{"makers", json::value(std::move(rows))}};
}

json::value compare_payload(const dataset::database_view& db,
                            const std::vector<manufacturer>& makers) {
  json::array rows;
  std::optional<double> best_dpm;
  std::optional<double> worst_dpm;
  std::optional<manufacturer> best_maker;
  std::optional<manufacturer> worst_maker;
  for (const auto& row : core::build_table7(db, makers)) {
    rows.emplace_back(json::object{
        {"maker", json::value(std::string(dataset::manufacturer_id(row.maker)))},
        {"median_dpm", opt_num(row.median_dpm)},
        {"median_apm", opt_num(row.median_apm)},
        {"vs_human", opt_num(row.vs_human)},
    });
    if (row.median_dpm && *row.median_dpm > 0) {
      if (!best_dpm || *row.median_dpm < *best_dpm) {
        best_dpm = row.median_dpm;
        best_maker = row.maker;
      }
      if (!worst_dpm || *row.median_dpm > *worst_dpm) {
        worst_dpm = row.median_dpm;
        worst_maker = row.maker;
      }
    }
  }
  json::object out{{"rows", json::value(std::move(rows))}};
  if (best_maker && worst_maker) {
    out.emplace_back("best", json::value(std::string(dataset::manufacturer_id(*best_maker))));
    out.emplace_back("worst", json::value(std::string(dataset::manufacturer_id(*worst_maker))));
    // The paper's "~100x disparity" headline, live from the database.
    out.emplace_back("median_dpm_spread", num(*worst_dpm / *best_dpm));
  }
  return out;
}

// Bound on curve points per maker in an mcf payload: the full Waymo curve
// has thousands of steps, which would dominate every response and cache
// entry for no analytical gain.
constexpr std::size_t k_mcf_payload_points = 200;

json::value mcf_payload(const dataset::database_view& db, const query& q) {
  json::array rows;
  for (const auto& mp : reliability::extract_processes(db)) {
    // Per-VIN processes where the reports expose them; the fleet process is
    // the single-unit fallback (bands then degenerate, as they should).
    const std::span<const reliability::event_process> units =
        mp.vehicles.empty() ? std::span(&mp.fleet, 1) : std::span(mp.vehicles);
    reliability::mcf_options options;
    options.seed = q.seed;
    options.replicates = q.replicates;
    options.max_points = k_mcf_payload_points;
    const auto estimate = reliability::estimate_mcf(units, options);
    json::array points;
    for (const auto& p : estimate.points) {
      points.emplace_back(json::object{
          {"miles", num(p.miles)},
          {"events", json::value(p.events)},
          {"at_risk", json::value(p.at_risk)},
          {"mcf", num(p.mcf)},
          {"variance", num(p.variance)},
          {"lower", num(p.lower)},
          {"upper", num(p.upper)},
      });
    }
    rows.emplace_back(json::object{
        {"maker", json::value(std::string(dataset::manufacturer_id(mp.maker)))},
        {"units", json::value(estimate.units)},
        {"events", json::value(estimate.total_events)},
        {"points", json::value(std::move(points))},
    });
  }
  return json::object{
      {"replicates", json::value(q.replicates)},
      {"seed", json::value(q.seed)},
      {"makers", json::value(std::move(rows))},
  };
}

json::value nhpp_fit_json(const reliability::nhpp_fit& f, bool power_law) {
  json::object out;
  if (power_law) {
    out.emplace_back("shape", num(f.shape));
    out.emplace_back("scale", num(f.scale));
  } else {
    out.emplace_back("alpha", num(f.alpha));
    out.emplace_back("gamma", num(f.gamma));
  }
  out.emplace_back("log_likelihood", num(f.log_likelihood));
  out.emplace_back("aic", num(f.aic));
  out.emplace_back("converged", json::value(f.converged));
  return out;
}

json::value nhpp_payload(const dataset::database_view& db, const query& q) {
  json::array rows;
  for (const auto& mp : reliability::extract_processes(db)) {
    // Trend models run on the fleet-level superposed process, so the
    // extrapolation answers "expected events over the next H fleet miles".
    const auto analysis = reliability::fit_trend(std::span(&mp.fleet, 1));
    const double at = mp.fleet.exposure;
    rows.emplace_back(json::object{
        {"maker", json::value(std::string(dataset::manufacturer_id(mp.maker)))},
        {"events", json::value(analysis.events)},
        {"exposure_miles", num(analysis.exposure)},
        {"hpp", json::value(json::object{
                    {"rate", num(analysis.hpp.rate)},
                    {"log_likelihood", num(analysis.hpp.log_likelihood)},
                    {"aic", num(analysis.hpp.aic)},
                })},
        {"power_law", nhpp_fit_json(analysis.power_law, true)},
        {"log_linear", nhpp_fit_json(analysis.log_linear, false)},
        {"laplace", json::value(json::object{
                        {"statistic", num(analysis.laplace.statistic)},
                        {"p_value", num(analysis.laplace.p_value)},
                    })},
        {"preferred", json::value(std::string(analysis.preferred()))},
        {"expected_events",
         json::value(json::object{
             {"horizon_miles", num(q.horizon_miles)},
             {"hpp", num(reliability::expected_events(analysis, "hpp", at, q.horizon_miles))},
             {"power_law",
              num(reliability::expected_events(analysis, "power_law", at, q.horizon_miles))},
             {"log_linear",
              num(reliability::expected_events(analysis, "log_linear", at, q.horizon_miles))},
         })},
    });
  }
  return json::object{
      {"horizon_miles", num(q.horizon_miles)},
      {"makers", json::value(std::move(rows))},
  };
}

// A live append always scans strictly (the batch quarantine policies'
// validations must not be bypassable over the wire), and the processor
// shares the engine's trace.
ingest::processor_config make_ingest_config(const engine_config& config) {
  ingest::processor_config pcfg = config.ingest;
  pcfg.strict = true;
  pcfg.trace = config.trace;
  return pcfg;
}

// Dispatches over an already-restricted view: filters were resolved by the
// caller (indexed selections or the materialized naive database), so every
// builder below just runs over whatever `db` exposes.
json::value execute_payload(const dataset::database_view& db, const query& q) {
  const auto makers = makers_for(db, q);
  switch (q.kind) {
    case query_kind::metrics: return metrics_payload(db, makers);
    case query_kind::tags: return tags_payload(db, makers);
    case query_kind::categories: return categories_payload(db, makers);
    case query_kind::modality: return modality_payload(db, makers);
    case query_kind::trend: return trend_payload(db, makers);
    case query_kind::fit: return fit_payload(db, makers, q.min_samples);
    case query_kind::compare: return compare_payload(db, makers);
    case query_kind::mcf: return mcf_payload(db, q);
    case query_kind::nhpp: return nhpp_payload(db, q);
  }
  return json::object{};
}

}  // namespace

std::string_view query_exec_name(query_exec e) {
  switch (e) {
    case query_exec::naive: return "naive";
    case query_exec::indexed: return "indexed";
  }
  return "indexed";
}

std::optional<query_exec> query_exec_from_string(std::string_view s) {
  if (s == "naive") return query_exec::naive;
  if (s == "indexed") return query_exec::indexed;
  return std::nullopt;
}

query_engine::query_engine(dataset::failure_database db, engine_config config)
    : store_(std::move(db), config.trace),
      cache_(config.cache_capacity, config.cache_shards),
      pool_(config.threads != 0 ? config.threads
                                : std::max(std::thread::hardware_concurrency(), 1u)),
      trace_(config.trace),
      exec_(config.exec),
      processor_(make_ingest_config(config)),
      queries_(obs::metrics().get_counter("serve.queries")),
      hits_(obs::metrics().get_counter("serve.cache_hits")),
      misses_(obs::metrics().get_counter("serve.cache_misses")),
      appends_(obs::metrics().get_counter("serve.appends")),
      query_ns_(obs::metrics().get_counter("serve.query_ns")),
      ingests_(obs::metrics().get_counter("serve.ingests")),
      ingest_records_(obs::metrics().get_counter("serve.ingest.records")),
      ingest_ns_(obs::metrics().get_counter("serve.ingest_ns")) {}

query_response query_engine::execute(const query& q) {
  const obs::stopwatch watch;
  queries_.add();

  query_response out;
  out.canonical = q.canonical();

  // Pin the published snapshot: one atomic refcounted load, no lock.
  // Everything below — the version the response reports, the cache key,
  // the computation — is against this one frozen epoch; a commit landing
  // meanwhile publishes a *new* snapshot and cannot touch this one.
  const auto snap = store_.pin();
  out.version = snap->version();
  out.epoch = snap->epoch();
  const std::string key = cache_key(q, out.version);
  if (auto cached = cache_.get(key)) {
    hits_.add();
    const obs::scoped_span span(trace_,
                                "serve.hit." + std::string(query_kind_name(q.kind)));
    out.payload = std::move(cached);
    out.cache_hit = true;
    out.latency_ns = watch.elapsed_ns();
    query_ns_.add(static_cast<std::uint64_t>(out.latency_ns));
    return out;
  }

  misses_.add();
  obs::scoped_span span(trace_, "serve.query." + std::string(query_kind_name(q.kind)));
  json::value result;
  if (!needs_filter(q)) {
    result = execute_payload(snap->db(), q);
  } else if (exec_ == query_exec::indexed) {
    // Zero-copy path: selections from the snapshot's lazy index feed a
    // view over the pinned arrays; nothing is materialized. The selection
    // object owns any intersected index lists, so it must outlive the
    // view — both live to the end of this block, under the snapshot pin.
    const auto sel = snap->index(trace_).select(q);
    const auto view = sel.view(snap->db());
    result = execute_payload(view, q);
  } else {
    const auto filtered = filter_database(snap->db(), q);
    result = execute_payload(filtered, q);
  }
  auto payload = std::make_shared<const std::string>(result.dump());
  span.close();

  cache_.put(key, payload);
  obs::metrics().set_gauge("serve.cache_size", static_cast<double>(cache_.size()));
  obs::metrics().set_gauge("serve.cache_evictions", static_cast<double>(cache_.evictions()));

  out.payload = std::move(payload);
  out.cache_hit = false;
  out.latency_ns = watch.elapsed_ns();
  query_ns_.add(static_cast<std::uint64_t>(out.latency_ns));
  return out;
}

std::future<query_response> query_engine::submit(query q) {
  return pool_.submit([this, q = std::move(q)] { return execute(q); });
}

void query_engine::append_disengagement(dataset::disengagement_record rec) {
  store_.commit(
      [&](dataset::failure_database& db) { db.add_disengagement(std::move(rec)); });
  appends_.add();
  invalidate_dependents('d');
}

void query_engine::append_mileage(dataset::mileage_record rec) {
  store_.commit([&](dataset::failure_database& db) { db.add_mileage(std::move(rec)); });
  appends_.add();
  invalidate_dependents('m');
}

void query_engine::append_accident(dataset::accident_record rec) {
  store_.commit([&](dataset::failure_database& db) { db.add_accident(std::move(rec)); });
  appends_.add();
  invalidate_dependents('a');
}

ingest_response query_engine::ingest_document(const ocr::document& delivered,
                                              const ocr::document* pristine) {
  const obs::stopwatch watch;
  ingests_.add();

  ingest_response out;
  out.index = ingest_seq_.fetch_add(1, std::memory_order_relaxed);

  // Stage II/III run before the commit — the processor is immutable and
  // no lock is involved, so concurrent queries keep serving while the
  // document is scanned, normalized and labeled.
  obs::scoped_span span(trace_, "serve.ingest");
  auto processed = processor_.process(delivered, pristine, out.index, span.id());
  out.ocr_retried = processed.ocr_retried;
  out.unknown_tags = processed.unknown_tags;
  if (out.ocr_retried) obs::metrics().get_counter("serve.ingest.retried").add();

  if (!processed.accepted()) {
    out.reject = std::move(processed.fault);
    obs::metrics()
        .get_counter("serve.ingest.rejected." + std::string(error_code_name(out.reject->code)))
        .add();
    // Untouched: a reject publishes nothing — no commit, no epoch, no
    // version bump; the snapshot readers hold stays the published one.
    const auto snap = store_.pin();
    out.version = snap->version();
    out.epoch = snap->epoch();
    out.latency_ns = watch.elapsed_ns();
    ingest_ns_.add(static_cast<std::uint64_t>(out.latency_ns));
    span.close();
    return out;
  }

  out.disengagements_added = processed.disengagements.size();
  out.mileage_added = processed.mileage.size();
  out.accidents_added = processed.accidents.size();
  // One commit per document: all surviving records land in a single new
  // epoch, so a query observes either none or all of the document.
  const auto snap = store_.commit([&](dataset::failure_database& db) {
    for (auto& d : processed.disengagements) db.add_disengagement(std::move(d));
    for (auto& m : processed.mileage) db.add_mileage(std::move(m));
    for (auto& a : processed.accidents) db.add_accident(std::move(a));
  });
  out.version = snap->version();
  out.epoch = snap->epoch();
  const std::size_t records =
      out.disengagements_added + out.mileage_added + out.accidents_added;
  appends_.add(records);
  ingest_records_.add(records);

  // Only the domains the document touched got a version bump, so only
  // their dependents go stale.
  if (out.disengagements_added > 0) invalidate_dependents('d');
  if (out.mileage_added > 0) invalidate_dependents('m');
  if (out.accidents_added > 0) invalidate_dependents('a');

  out.latency_ns = watch.elapsed_ns();
  ingest_ns_.add(static_cast<std::uint64_t>(out.latency_ns));
  span.close();
  return out;
}

// Cache keys end in "@<version components>" where a component letter is
// present iff the query depends on that domain. Bumping domain X strands
// every key carrying an X component (its version number is now stale), so
// those — and only those — are dropped; entries over untouched domains
// keep serving.
void query_engine::invalidate_dependents(char domain_letter) {
  cache_.erase_if([domain_letter](const std::string& key) {
    const auto at = key.rfind('@');
    return at != std::string::npos && key.find(domain_letter, at + 1) != std::string::npos;
  });
  obs::metrics().set_gauge("serve.cache_size", static_cast<double>(cache_.size()));
}

}  // namespace avtk::serve
