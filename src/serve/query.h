// avtk/serve/query.h
//
// The typed query surface of the analytics engine: every Stage-IV analysis
// the paper runs once in batch, expressed as a small request object that can
// be parsed from JSON, canonicalized to a stable cache key, and executed
// against a const failure_database. Queries declare which database domains
// (disengagements / mileage / accidents) they read, so the cache can key
// results on exactly the versions a computation depends on.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "dataset/database.h"
#include "dataset/manufacturers.h"
#include "nlp/ontology.h"

namespace avtk::serve {

/// Every query the engine answers. Names are the wire spellings.
enum class query_kind {
  metrics,     ///< per-manufacturer DPM / median DPM / DPA / APM / APMi
  tags,        ///< fault-tag distribution (Fig. 6)
  categories,  ///< failure-category mix (Table IV)
  modality,    ///< who initiated the disengagement (Table V)
  trend,       ///< monthly miles / disengagements / DPM series
  fit,         ///< Weibull + exponentiated-Weibull + exponential reaction-time fits (Fig. 11)
  compare,     ///< cross-manufacturer reliability comparison (Table VII ordering)
  mcf,         ///< nonparametric mean cumulative function with bootstrap bands
  nhpp,        ///< NHPP trend fits (power-law / log-linear vs HPP) + extrapolation
};

/// Every query_kind, in enum order. New kinds must be added here — the
/// parser, the canonicalizer, and the exhaustive round-trip test all
/// iterate this list, so a kind missing from it cannot be requested.
inline constexpr query_kind k_all_query_kinds[] = {
    query_kind::metrics, query_kind::tags, query_kind::categories,
    query_kind::modality, query_kind::trend, query_kind::fit,
    query_kind::compare,  query_kind::mcf,  query_kind::nhpp,
};

std::string_view query_kind_name(query_kind k);
std::optional<query_kind> query_kind_from_string(std::string_view s);

/// Bitmask of the database domains a query reads.
enum domain : std::uint8_t {
  domain_disengagements = 1u << 0,
  domain_mileage = 1u << 1,
  domain_accidents = 1u << 2,
};
using domain_mask = std::uint8_t;

/// One analytics request. Filters are conjunctive; an unset filter matches
/// everything. The `year` filter selects by event month (falling back to
/// the DMV report year for undated records).
struct query {
  query_kind kind = query_kind::metrics;
  std::optional<dataset::manufacturer> maker;
  std::optional<int> year;
  std::optional<nlp::fault_tag> tag;
  std::optional<nlp::failure_category> category;
  /// Minimum reaction-time samples for `fit` (the paper uses 30).
  std::size_t min_samples = 30;
  /// Bootstrap replicates for `mcf` confidence bands (>= 100).
  int replicates = 200;
  /// Seed for the `mcf` bootstrap resampling stream. Part of the canonical
  /// form, so differently-seeded bands occupy distinct cache entries.
  std::uint64_t seed = 42;
  /// Extrapolation horizon for `nhpp`: expected events over the next this
  /// many fleet miles.
  double horizon_miles = 10000.0;

  /// Which domains executing this query reads. Tag/category breakdowns
  /// read only disengagements; metrics and compare read all three.
  domain_mask dependencies() const;

  /// Stable canonical form, e.g. "tags?maker=waymo&year=2016". Two queries
  /// with the same canonical form always produce identical results against
  /// the same database version.
  std::string canonical() const;
};

/// Parse error carrying a human-readable reason.
struct query_parse_error {
  std::string message;
};

/// Parses a JSON request object, e.g.
///   {"query": "metrics", "maker": "waymo", "year": 2016}
/// Unknown fields are rejected (a typoed filter silently matching
/// everything would be a correctness bug in a cached service).
/// Returns the query or a parse error message.
std::optional<query> parse_query(std::string_view text, query_parse_error* error = nullptr);

/// The version-qualified cache key: canonical form plus the versions of the
/// domains this query depends on. Appends to domains a query does not read
/// leave its key — and therefore its cached result — untouched.
std::string cache_key(const query& q, const dataset::database_version& version);

}  // namespace avtk::serve
