#include "serve/protocol.h"

#include <deque>
#include <istream>
#include <optional>
#include <ostream>
#include <utility>

#include "obs/json.h"
#include "obs/metrics.h"
#include "util/errors.h"

namespace avtk::serve {

namespace json = obs::json;

namespace {

// Envelopes are assembled by hand so the cached payload text can be spliced
// in verbatim — re-parsing it into a value tree would cost the warm path
// the whole serialization again for nothing.
std::string envelope_prefix(const std::optional<json::value>& id, bool ok) {
  std::string out = "{\"schema\":";
  out += json::escape(k_serve_schema);
  out += ",\"ok\":";
  out += ok ? "true" : "false";
  if (id) {
    out += ",\"id\":";
    out += id->dump();
  }
  return out;
}

std::string envelope_ok(const std::optional<json::value>& id, const query_response& r) {
  std::string out = envelope_prefix(id, true);
  out += ",\"query\":";
  out += json::escape(r.canonical);
  out += ",\"version\":";
  out += json::escape(r.version.to_string());
  out += ",\"payload\":";
  out += *r.payload;
  out += '}';
  return out;
}

// Machine-readable code for an execution failure: avtk errors report their
// taxonomy code, anything else is "internal".
std::string_view execution_code(const std::exception& e) {
  if (const auto* ave = dynamic_cast<const avtk::error*>(&e)) {
    return error_code_name(ave->code());
  }
  return "internal";
}

std::string envelope_error(const std::optional<json::value>& id, std::string_view code,
                           std::string_view message) {
  std::string out = envelope_prefix(id, false);
  out += ",\"code\":";
  out += json::escape(code);
  out += ",\"error\":";
  out += json::escape(message);
  out += '}';
  return out;
}

// Best-effort correlation id: only well-formed objects can carry one.
std::optional<json::value> extract_id(std::string_view line) {
  const auto doc = json::parse(line);
  if (!doc || !doc->is_object()) return std::nullopt;
  const auto* id = doc->find("id");
  if (id == nullptr || (!id->is_string() && !id->is_number())) return std::nullopt;
  return *id;
}

bool is_request_line(std::string_view line) {
  const auto first = line.find_first_not_of(" \t\r");
  return first != std::string_view::npos && line[first] != '#';
}

// A parsed ingest request: the delivered document plus the optional
// pristine (manual-transcription) fallback.
struct ingest_request {
  ocr::document delivered;
  std::optional<ocr::document> pristine;
};

// The "ingest" member is either a bare text string or
// {"text": ..., "title": ..., "pristine": ...}. Unknown members are
// rejected, matching parse_query's posture.
std::optional<ingest_request> parse_ingest_request(const json::value& doc, std::string* error) {
  const auto* spec = doc.find("ingest");
  ingest_request out;
  if (spec->is_string()) {
    out.delivered = ocr::document::from_text(spec->as_string());
    return out;
  }
  if (!spec->is_object()) {
    *error = "'ingest' must be a document text string or an object";
    return std::nullopt;
  }
  for (const auto& [key, unused] : spec->as_object()) {
    if (key != "text" && key != "title" && key != "pristine") {
      *error = "unknown ingest field '" + key + "'";
      return std::nullopt;
    }
  }
  const auto* text = spec->find("text");
  if (text == nullptr || !text->is_string()) {
    *error = "ingest request needs a string 'text' member";
    return std::nullopt;
  }
  out.delivered = ocr::document::from_text(text->as_string());
  if (const auto* title = spec->find("title")) {
    if (!title->is_string()) {
      *error = "ingest 'title' must be a string";
      return std::nullopt;
    }
    out.delivered.title = title->as_string();
  }
  if (const auto* pristine = spec->find("pristine")) {
    if (!pristine->is_string()) {
      *error = "ingest 'pristine' must be a string";
      return std::nullopt;
    }
    out.pristine = ocr::document::from_text(pristine->as_string());
    out.pristine->title = out.delivered.title;
  }
  return out;
}

std::string envelope_ingest_ok(const std::optional<json::value>& id, const ingest_response& r) {
  std::string out = envelope_prefix(id, true);
  out += ",\"ingest\":{\"index\":" + std::to_string(r.index);
  out += ",\"disengagements\":" + std::to_string(r.disengagements_added);
  out += ",\"mileage\":" + std::to_string(r.mileage_added);
  out += ",\"accidents\":" + std::to_string(r.accidents_added);
  out += ",\"unknown_tags\":" + std::to_string(r.unknown_tags);
  out += ",\"ocr_retried\":";
  out += r.ocr_retried ? "true" : "false";
  out += "},\"version\":";
  out += json::escape(r.version.to_string());
  out += '}';
  return out;
}

// The structured per-record reject: taxonomy code at the top level (so
// clients branch without string-matching), plus — unless the skip posture
// dropped it — a "rejects" array with one index/title/code/message entry
// per refused record.
std::string envelope_ingest_reject(const std::optional<json::value>& id,
                                   const ingest_response& r, bool detail) {
  const auto& q = *r.reject;
  std::string out = envelope_prefix(id, false);
  out += ",\"code\":";
  out += json::escape(error_code_name(q.code));
  out += ",\"error\":";
  out += json::escape(q.message);
  if (detail) {
    out += ",\"rejects\":[{\"index\":" + std::to_string(q.index);
    out += ",\"title\":";
    out += json::escape(q.title);
    out += ",\"code\":";
    out += json::escape(error_code_name(q.code));
    out += ",\"message\":";
    out += json::escape(q.message);
    out += "}]";
  }
  out += ",\"version\":";
  out += json::escape(r.version.to_string());
  out += '}';
  return out;
}

}  // namespace

std::string handle_request_line(query_engine& engine, std::string_view line) {
  const auto id = extract_id(line);
  if (const auto doc = json::parse(line); doc && doc->is_object() && doc->find("ingest")) {
    std::string perr;
    const auto req = parse_ingest_request(*doc, &perr);
    if (!req) return envelope_error(id, "parse", perr);
    const auto r =
        engine.ingest_document(req->delivered, req->pristine ? &*req->pristine : nullptr);
    return r.accepted() ? envelope_ingest_ok(id, r)
                        : envelope_ingest_reject(id, r, /*detail=*/true);
  }
  query_parse_error error;
  const auto q = parse_query(line, &error);
  if (!q) return envelope_error(id, "parse", error.message);
  try {
    return envelope_ok(id, engine.execute(*q));
  } catch (const std::exception& e) {
    return envelope_error(id, execution_code(e), std::string("query failed: ") + e.what());
  }
}

serve_loop_stats run_serve_loop(query_engine& engine, std::istream& in, std::ostream& out,
                                std::size_t max_in_flight) {
  serve_loop_options options;
  options.max_in_flight = max_in_flight;
  return run_serve_loop(engine, in, out, options);
}

serve_loop_stats run_serve_loop(query_engine& engine, std::istream& in, std::ostream& out,
                                const serve_loop_options& options) {
  std::size_t max_in_flight = options.max_in_flight;
  if (max_in_flight == 0) max_in_flight = static_cast<std::size_t>(engine.threads()) * 2;
  if (max_in_flight < 1) max_in_flight = 1;

  serve_loop_stats stats;

  // A window of in-flight requests; responses drain from the front so
  // output order always matches input order regardless of which worker
  // finishes first.
  struct pending {
    std::optional<json::value> id;
    std::optional<std::future<query_response>> future;  // nullopt: parse error
    std::string error;
  };
  std::deque<pending> window;

  const auto drain_front = [&] {
    pending p = std::move(window.front());
    window.pop_front();
    if (!p.future) {
      ++stats.errors;
      ++stats.parse_errors;
      obs::metrics().get_counter("serve.errors.parse").add();
      out << envelope_error(p.id, "parse", p.error) << '\n';
      return;
    }
    try {
      const auto r = p.future->get();
      if (r.cache_hit) ++stats.cache_hits;
      out << envelope_ok(p.id, r) << '\n';
    } catch (const std::exception& e) {
      ++stats.errors;
      ++stats.execution_errors;
      obs::metrics().get_counter("serve.errors.execution").add();
      out << envelope_error(p.id, execution_code(e), std::string("query failed: ") + e.what())
          << '\n';
    }
  };

  std::string line;
  while (std::getline(in, line)) {
    if (!is_request_line(line)) continue;
    ++stats.requests;

    if (const auto doc = json::parse(line); doc && doc->is_object() && doc->find("ingest")) {
      // Response-order barrier (not a store barrier: the snapshot store
      // commits without stalling queries): everything already in flight
      // answers against its pinned pre-ingest snapshot before the
      // document lands, so the response stream reads like a serial
      // history and each query's version vector matches its position.
      while (!window.empty()) drain_front();
      const auto id = extract_id(line);
      std::string perr;
      const auto req = parse_ingest_request(*doc, &perr);
      if (!req) {
        ++stats.errors;
        ++stats.parse_errors;
        obs::metrics().get_counter("serve.errors.parse").add();
        out << envelope_error(id, "parse", perr) << '\n';
        continue;
      }
      ++stats.ingests;
      const auto r =
          engine.ingest_document(req->delivered, req->pristine ? &*req->pristine : nullptr);
      if (r.accepted()) {
        stats.ingest_records += r.disengagements_added + r.mileage_added + r.accidents_added;
        out << envelope_ingest_ok(id, r) << '\n';
      } else {
        ++stats.errors;
        ++stats.ingest_rejected;
        const bool detail = options.on_ingest_error != ingest::error_policy::skip;
        out << envelope_ingest_reject(id, r, detail) << '\n';
        if (options.on_ingest_error == ingest::error_policy::fail_fast) {
          stats.aborted = true;
          // Deterministic-prefix contract (see the header): the reject
          // envelope is the LAST line of the response stream. The barrier
          // above already drained everything that was in flight, so the
          // window is empty here; clearing it anyway means a future
          // reordering of this branch cannot silently answer queued
          // queries after the abort decision.
          window.clear();
          break;
        }
      }
      continue;
    }

    pending p;
    p.id = extract_id(line);
    query_parse_error error;
    if (const auto q = parse_query(line, &error)) {
      p.future = engine.submit(*q);
    } else {
      p.error = std::move(error.message);
    }
    window.push_back(std::move(p));
    while (window.size() >= max_in_flight) drain_front();
  }
  while (!window.empty()) drain_front();
  out.flush();
  // Sample the occupancy gauges only after the last response is written:
  // per-query samples race each other under pipelining, so the snapshot a
  // caller exports after the loop must be re-sampled from the completed
  // engine state (check_serve.py asserts on the final value).
  obs::metrics().set_gauge("serve.cache_size", static_cast<double>(engine.cache_size()));
  obs::metrics().set_gauge("serve.cache_evictions",
                           static_cast<double>(engine.cache_evictions()));
  return stats;
}

}  // namespace avtk::serve
