// avtk/serve/thread_pool.h
//
// A fixed-size worker pool for query execution. Deliberately minimal: FIFO
// task queue, std::future results via packaged_task, drain-on-destruction.
// The engine owns one pool for its whole lifetime, so there is no dynamic
// resizing and no work stealing — queries are coarse enough (whole Stage-IV
// analyses) that a single shared queue is nowhere near contention.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

namespace avtk::serve {

class thread_pool {
 public:
  /// Starts `threads` workers (minimum one).
  explicit thread_pool(unsigned threads);

  thread_pool(const thread_pool&) = delete;
  thread_pool& operator=(const thread_pool&) = delete;

  /// Finishes every queued task, then joins the workers.
  ~thread_pool();

  /// Enqueues `fn` and returns a future for its result. Tasks run in FIFO
  /// order across the worker set.
  template <typename Fn>
  std::future<std::invoke_result_t<Fn>> submit(Fn fn) {
    using result_t = std::invoke_result_t<Fn>;
    std::packaged_task<result_t()> task(std::move(fn));
    auto future = task.get_future();
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      queue_.emplace_back(
          [task = std::make_shared<std::packaged_task<result_t()>>(std::move(task))] {
            (*task)();
          });
    }
    wake_.notify_one();
    return future;
  }

  unsigned size() const { return static_cast<unsigned>(workers_.size()); }

 private:
  void worker_loop();

  std::mutex mutex_;
  std::condition_variable wake_;
  std::deque<std::function<void()>> queue_;
  bool stopping_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace avtk::serve
