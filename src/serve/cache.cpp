#include "serve/cache.h"

#include <algorithm>
#include <functional>

namespace avtk::serve {

result_cache::result_cache(std::size_t capacity, std::size_t shards)
    : capacity_(std::max<std::size_t>(capacity, 1)),
      shards_(std::max<std::size_t>(std::min(shards, capacity_), 1)) {
  per_shard_capacity_ = std::max<std::size_t>(capacity_ / shards_.size(), 1);
}

result_cache::shard& result_cache::shard_for(const std::string& key) {
  return shards_[std::hash<std::string>{}(key) % shards_.size()];
}

std::shared_ptr<const std::string> result_cache::get(const std::string& key) {
  auto& s = shard_for(key);
  const std::lock_guard<std::mutex> lock(s.mutex);
  const auto it = s.index.find(key);
  if (it == s.index.end()) return nullptr;
  s.order.splice(s.order.begin(), s.order, it->second);
  return it->second->value;
}

void result_cache::put(const std::string& key, std::shared_ptr<const std::string> value) {
  auto& s = shard_for(key);
  const std::lock_guard<std::mutex> lock(s.mutex);
  if (const auto it = s.index.find(key); it != s.index.end()) {
    it->second->value = std::move(value);
    s.order.splice(s.order.begin(), s.order, it->second);
    return;
  }
  s.order.push_front(entry{key, std::move(value)});
  s.index.emplace(key, s.order.begin());
  while (s.order.size() > per_shard_capacity_) {
    s.index.erase(s.order.back().key);
    s.order.pop_back();
    ++s.evictions;
  }
}

std::size_t result_cache::size() const {
  std::size_t n = 0;
  for (const auto& s : shards_) {
    const std::lock_guard<std::mutex> lock(s.mutex);
    n += s.order.size();
  }
  return n;
}

std::uint64_t result_cache::evictions() const {
  std::uint64_t n = 0;
  for (const auto& s : shards_) {
    const std::lock_guard<std::mutex> lock(s.mutex);
    n += s.evictions;
  }
  return n;
}

}  // namespace avtk::serve
