// avtk/ocr/postprocess.h
//
// Lexicon-based OCR post-correction: repairs glyph confusions inside
// numeric fields ("1O" -> "10"), and snaps near-miss words to a unique
// lexicon entry within edit distance 1. This is the step that makes the
// downstream parsers and the NLP tagger robust to residual scan noise.
#pragma once

#include <string>
#include <string_view>
#include <unordered_set>
#include <vector>

namespace avtk::ocr {

/// The correction vocabulary (lower-cased words).
class lexicon {
 public:
  lexicon() = default;
  explicit lexicon(std::vector<std::string> words);

  void add(std::string_view word);
  bool contains(std::string_view word) const;
  std::size_t size() const { return words_.size(); }

  /// The unique lexicon word within edit distance 1 of `word`, or empty
  /// when none or ambiguous. Exact members return themselves.
  std::string best_match(std::string_view word) const;

  /// Default vocabulary: report-schema keywords, month names, manufacturer
  /// names, and the failure-dictionary vocabulary.
  static lexicon builtin();

 private:
  std::unordered_set<std::string> words_;
};

/// Repairs digit/letter confusions in tokens that are mostly digits
/// ("2O16" -> "2016", "1l/12" -> "11/12").
std::string repair_numeric_token(std::string_view token);

/// Corrects one line: numeric repair plus lexicon snapping per word.
/// Non-word characters (separators, punctuation) are preserved verbatim.
std::string correct_line(std::string_view line, const lexicon& vocab);

/// Fraction of alphabetic words in `line` found in the lexicon — the
/// engine's confidence signal.
double vocabulary_hit_rate(std::string_view line, const lexicon& vocab);

}  // namespace avtk::ocr
