// avtk/ocr/engine.h
//
// The mock OCR engine (the pipeline's stand-in for Google Tesseract).
// Recognition in this simulation is text-level: the engine receives the
// corrupted glyph stream and emits recognized lines plus a per-line
// confidence estimate derived from how much of the line it could anchor to
// known vocabulary. Lines below a confidence floor are flagged for the
// "manual transcription" fallback the paper describes for scans Tesseract
// could not handle.
#pragma once

#include <string>
#include <vector>

#include "ocr/document.h"
#include "ocr/postprocess.h"

namespace avtk::ocr {

/// One recognized line.
struct recognized_line {
  std::string text;
  double confidence = 1.0;       ///< 0..1
  bool needs_manual_review = false;
};

/// Whole-document recognition result.
struct recognition_result {
  std::vector<recognized_line> lines;
  double mean_confidence = 1.0;
  std::size_t manual_review_count = 0;

  /// Recognized text joined by newlines.
  std::string text() const;
};

/// Engine configuration.
struct engine_config {
  double manual_review_threshold = 0.60;  ///< flag lines below this confidence
  bool apply_postprocess = true;           ///< run lexicon-based correction

  /// The conservative profile the ingestion path retries with after the
  /// standard profile gives up on a document (the paper's "manual
  /// transcription" rung): identical recovery, but nearly every line is
  /// flagged for manual review so downstream consumers treat the text as
  /// best-effort rather than trusted.
  static engine_config degraded() {
    engine_config cfg;
    cfg.manual_review_threshold = 0.95;
    return cfg;
  }
};

class mock_ocr_engine {
 public:
  /// The corrector's lexicon decides what "looks like a word" — pass the
  /// pipeline's vocabulary (failure-dictionary stems + report keywords).
  mock_ocr_engine(lexicon vocab, engine_config config = {});

  /// Recognizes a (corrupted) document.
  recognition_result recognize(const document& doc) const;

  /// Recognizes a single line.
  recognized_line recognize_line(const std::string& line) const;

 private:
  lexicon vocab_;
  engine_config config_;
};

}  // namespace avtk::ocr
