// avtk/ocr/noise.h
//
// The scan-degradation model: character-level corruption patterns that
// Tesseract-era OCR actually produces — glyph confusions (l<->1, O<->0,
// rn->m), dropped and duplicated characters, and spurious / missing spaces.
// Corruption is applied deterministically from a seeded rng so every
// experiment is reproducible.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "ocr/document.h"
#include "util/rng.h"

namespace avtk::ocr {

/// Per-character corruption probabilities, plus the structural failure mode
/// the paper attributes to Tesseract: whole table rows merging into their
/// neighbours ("inability to recognize some table formats").
struct noise_profile {
  double confusion = 0.0;    ///< glyph-confusion substitution probability
  double drop = 0.0;         ///< character deletion probability
  double duplicate = 0.0;    ///< character duplication probability
  double space_insert = 0.0; ///< probability of a spurious space after a char
  double space_drop = 0.0;   ///< probability of deleting a space
  double line_merge = 0.0;   ///< per-line probability of merging with the next line

  /// Canonical profile for each scan quality.
  static noise_profile for_quality(scan_quality q);
};

/// The glyph-confusion table: for a given character, the plausible OCR
/// misreads ('l' -> {'1','I'}, '0' -> {'O'}, ...). Characters with no entry
/// are never confused.
const std::vector<char>& confusions_for(char c);

/// Corrupts one line of text according to `profile`.
std::string corrupt_line(std::string_view line, const noise_profile& profile, rng& gen);

/// Corrupts a whole document in place (all pages, all lines) using the
/// profile implied by the document's scan quality. Line merging (when the
/// profile enables it) REDUCES the line count — exactly the structural
/// damage that forces the pipeline's document-level manual fallback.
void corrupt_document(document& doc, rng& gen);

/// Character error rate between a reference and a corrupted/recovered
/// string: edit_distance / reference length (0 for two empty strings).
double character_error_rate(std::string_view reference, std::string_view hypothesis);

}  // namespace avtk::ocr
