#include "ocr/document.h"

#include "util/strings.h"

namespace avtk::ocr {

std::size_t document::line_count() const {
  std::size_t n = 0;
  for (const auto& p : pages) n += p.lines.size();
  return n;
}

std::string document::full_text() const {
  std::string out;
  for (std::size_t i = 0; i < pages.size(); ++i) {
    if (i > 0) out += '\n';
    for (const auto& line : pages[i].lines) {
      out += line;
      out += '\n';
    }
  }
  return out;
}

document document::from_text(std::string text) {
  document doc;
  page p;
  for (auto& line : str::split(text, '\n')) p.lines.push_back(std::move(line));
  // A trailing newline leaves one empty line; keep the text round-trippable
  // by dropping it.
  if (!p.lines.empty() && p.lines.back().empty()) p.lines.pop_back();
  doc.pages.push_back(std::move(p));
  return doc;
}

}  // namespace avtk::ocr
