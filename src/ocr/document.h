// avtk/ocr/document.h
//
// Document model for the scanned-report simulation. The real study began
// from scanned PDFs; we model a document as pages of text lines plus scan
// metadata. The "scan" step (noise.h) corrupts the text the way a low-
// resolution scan corrupts glyphs, and the mock OCR engine (engine.h)
// recovers it with per-line confidence.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace avtk::ocr {

/// How badly degraded the scan is; drives the noise model's error rates.
enum class scan_quality {
  clean,     ///< born-digital PDF: near-zero corruption
  good,      ///< 300 dpi scan: rare confusions
  fair,      ///< 200 dpi: occasional confusions, rare drops
  poor,      ///< fax-grade: frequent confusions, drops, merges
};

/// One page of a scanned document.
struct page {
  std::vector<std::string> lines;
};

/// A multi-page document flowing through the pipeline.
struct document {
  std::string title;              ///< e.g. "Waymo Disengagement Report 2016"
  std::string manufacturer;       ///< canonical manufacturer name
  int report_year = 0;            ///< DMV release year (2016 or 2017)
  scan_quality quality = scan_quality::good;
  std::vector<page> pages;

  /// Total line count across pages.
  std::size_t line_count() const;

  /// All lines concatenated with '\n' (page breaks become blank lines).
  std::string full_text() const;

  /// Builds a single-page document from raw text.
  static document from_text(std::string text);
};

}  // namespace avtk::ocr
