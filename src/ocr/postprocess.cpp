#include "ocr/postprocess.h"

#include "nlp/dictionary.h"
#include "nlp/tokenizer.h"
#include "util/strings.h"

namespace avtk::ocr {

namespace {

// Glyph repairs valid inside numeric context.
char to_digit(char c) {
  switch (c) {
    case 'O': case 'o': return '0';
    case 'l': case 'I': return '1';
    case 'S': case 's': return '5';
    case 'B': return '8';
    case 'Z': case 'z': return '2';
    case 'g': case 'q': return '9';
    case 'b': return '6';
    default: return c;
  }
}

bool is_word_char(char c) { return avtk::str::is_alpha(c) || c == '\''; }

// Repairs digit-confusable glyphs inside a mostly-numeric token, leaving
// non-confusable characters (true letters, separators) untouched.
std::string repair_numeric_token_mixed(std::string_view token) {
  std::string out;
  out.reserve(token.size());
  for (char c : token) {
    out += avtk::str::is_digit(c) ? c : to_digit(c);
  }
  return out;
}

}  // namespace

lexicon::lexicon(std::vector<std::string> words) {
  for (auto& w : words) add(w);
}

void lexicon::add(std::string_view word) {
  if (word.empty()) return;
  words_.insert(str::to_lower(word));
}

bool lexicon::contains(std::string_view word) const {
  return words_.contains(str::to_lower(word));
}

std::string lexicon::best_match(std::string_view word) const {
  const std::string lower = str::to_lower(word);
  if (words_.contains(lower)) return lower;
  if (lower.size() < 3) return {};  // too short to snap safely
  std::string found;
  for (const auto& candidate : words_) {
    // Cheap length filter before the O(nm) distance.
    const auto ls = lower.size();
    const auto cs = candidate.size();
    if (cs + 1 < ls || ls + 1 < cs) continue;
    if (str::edit_distance(lower, candidate) <= 1) {
      if (!found.empty()) return {};  // ambiguous: refuse to correct
      found = candidate;
    }
  }
  return found;
}

lexicon lexicon::builtin() {
  lexicon v;
  // Report schema keywords.
  v.add("ads");  // "Initiated By: ADS" — must not be "corrected" to "as"
  v.add("vin");
  for (const char* w :
       {"date", "time", "vin", "vehicle", "miles", "month", "disengagement", "disengagements",
        "disengage", "disengaged", "accident", "cause", "description", "location", "weather",
        "driver", "reaction", "initiated", "automatic", "manual", "planned", "autonomous",
        "mode", "total", "report", "street", "highway", "freeway", "interstate", "parking",
        "urban", "suburban", "rural", "sunny", "cloudy", "rainy", "overcast", "dry", "wet",
        "clear", "fog", "city", "road", "conditions", "safely", "resumed", "control",
        "takeover", "request", "test", "speed", "mph", "rear", "front", "side", "collision",
        "intersection", "lane", "turn", "stop", "yield", "pedestrian", "cyclist", "passenger"}) {
    v.add(w);
  }
  // Month names and abbreviations.
  for (const char* w : {"january", "february", "march", "april", "may", "june", "july",
                        "august", "september", "october", "november", "december", "jan", "feb",
                        "mar", "apr", "jun", "jul", "aug", "sep", "sept", "oct", "nov", "dec"}) {
    v.add(w);
  }
  // Manufacturer names as they appear in reports.
  for (const char* w : {"waymo", "google", "bosch", "delphi", "nissan", "mercedes", "benz",
                        "tesla", "volkswagen", "cruise", "gm", "uber", "ford", "honda", "bmw",
                        "leaf", "prototype"}) {
    v.add(w);
  }
  // Failure-dictionary vocabulary: every stem plus the raw words of the
  // builtin phrases (stems alone miss inflected forms seen in logs).
  const auto dict = nlp::failure_dictionary::builtin();
  for (const auto tag : dict.tags()) {
    for (const auto& phrase : dict.phrases(tag)) {
      for (const auto& s : phrase.stems) v.add(s);
    }
  }
  // Function words and report prose: these appear in nearly every line, so
  // they dominate the confidence signal.
  for (const char* w :
       {"a",    "an",   "and",  "as",    "at",    "by",    "centered", "did",  "didn",
        "down", "for",  "from", "her",   "his",   "in",    "into",     "it",   "its",
        "no",   "not",  "of",   "off",   "on",    "or",    "out",      "that", "the",
        "then", "this", "to",   "under", "up",    "was",   "were",     "with", "while",
        "again", "also", "after", "before", "during", "near", "over", "several", "twice",
        "late", "per",  "result", "immediate", "without", "incident", "assumed"}) {
    v.add(w);
  }
  // Vocabulary of the phrase-bank templates (the free-text cause lines).
  for (const char* w :
       {"mileage",    "triggered",   "expired",     "undetected", "construction", "forced",
        "approaching", "siren",      "degraded",    "visibility", "roadway",      "afternoon",
        "operation",  "debris",      "travel",      "erratic",    "stepped",      "curb",
        "unexpectedly", "jaywalking", "crossed",    "swerved",    "cones",        "maps",
        "adjacent",   "unusual",     "traffic",     "flow",       "platform",     "delayed",
        "output",     "exhaustion",  "primary",     "unit",       "inference",    "fallback",
        "engaged",    "resource",    "state",       "overheating", "enclosure",   "throttling",
        "monitor",    "lead",        "faded",       "pavement",   "shoulder",     "obstacle",
        "merging",    "confidence",  "threshold",   "crosswalk",  "anticipate",   "improper",
        "infeasible", "obstruction", "unwanted",    "uncomfortable", "insufficient", "gap",
        "tunnel",     "section",     "frames",      "corruption", "channel",      "drift",
        "suite",      "invalid",     "redundant",   "disagreed",  "spike",        "modules",
        "nodes",      "internal",    "messages",    "loss",       "exceeded",     "link",
        "unprotected", "logic",      "capability",  "oncoming",   "shared",       "double",
        "parked",     "truck",       "restart",     "automatically", "interface", "map",
        "matching",   "component",   "pipeline",    "keep",       "maneuver",     "ignored",
        "intervened", "drive",       "wire",        "faults",     "complex",      "yellow",
        "yielding",   "cross",       "turn",        "reset",      "driving",      "running",
        "red",        "light",       "cutting",     "reported",   "recorded",     "logged",
        "occurred",   "details",     "provided",    "additional", "information",  "available",
        "requirement", "normal",     "event",       "heavy",      "bus",          "mid",
        "block",      "closure",     "prior",       "ahead",      "high",         "load",
        "caused",     "side",        "plan",        "produced",   "selected",     "path",
        "chose",      "chosen",      "action",      "wrong",      "poor",         "made",
        "deceleration", "signal",    "lost",        "overpass",   "blackout",     "reading",
        "dropped",    "packets",     "handled",     "rate",       "data",         "timeout",
        "scene",      "situation",   "involving",   "beyond",     "outside",      "domain",
        "operational", "corner",     "case",        "unhandled",  "encountered",  "user"}) {
    v.add(w);
  }
  for (const char* w :
       {"software", "module", "froze", "watchdog", "error", "processor", "overload", "lidar",
        "radar", "gps", "camera", "sensor", "network", "latency", "bandwidth", "planner",
        "planning", "motion", "trajectory", "perception", "recognition", "detection",
        "detect", "behavior", "prediction", "predict", "recklessly", "behaving", "user",
        "construction", "zone", "emergency", "localize", "localization", "calibration",
        "decision", "controller", "unresponsive", "actuation", "command", "hardware",
        "memory", "crash", "hang", "bug", "system", "failure", "fault", "malfunction",
        "unforeseen", "situation", "designed", "limitation", "scenario", "glare", "debris",
        "incorrect", "untimely", "wrong", "vehicles"}) {
    v.add(w);
  }
  return v;
}

std::string repair_numeric_token(std::string_view token) {
  // Count digit-ish characters; only rewrite when the token is mostly
  // numeric already (avoids clobbering real words).
  std::size_t digits = 0;
  std::size_t repairable = 0;
  std::size_t letters = 0;
  for (char c : token) {
    if (str::is_digit(c)) {
      ++digits;
    } else if (to_digit(c) != c) {
      ++repairable;
    } else if (str::is_alpha(c)) {
      ++letters;
    }
  }
  if (digits == 0 || repairable == 0 || letters > 0) return std::string(token);
  if (digits < repairable) return std::string(token);  // more junk than signal
  std::string out;
  out.reserve(token.size());
  for (char c : token) out += str::is_digit(c) ? c : to_digit(c);
  return out;
}

std::string correct_line(std::string_view line, const lexicon& vocab) {
  std::string out;
  out.reserve(line.size());
  std::size_t i = 0;
  while (i < line.size()) {
    const char c = line[i];
    if (!is_word_char(c) && !str::is_digit(c)) {
      out += c;
      ++i;
      continue;
    }
    // A token is a maximal run of letters/digits/apostrophes. Glyph
    // confusions put digits inside words ("watchd0g") and letters inside
    // numbers ("2O16"), so the split must not happen at the letter/digit
    // boundary.
    const std::size_t start = i;
    std::size_t letters = 0;
    std::size_t digits = 0;
    while (i < line.size() && (is_word_char(line[i]) || str::is_digit(line[i]))) {
      if (str::is_digit(line[i])) {
        ++digits;
      } else if (str::is_alpha(line[i])) {
        ++letters;
      }
      ++i;
    }
    const auto token = line.substr(start, i - start);
    // Only tokens that contain real digits are numeric candidates: an
    // all-letter token like "so" must not be misread as "50".
    if (digits > 0 && digits >= letters) {
      // Mostly numeric: repair digit-confusable letters in place.
      out += repair_numeric_token_mixed(token);
      continue;
    }
    const auto fixed = vocab.best_match(token);
    if (!fixed.empty() && !vocab.contains(token)) {
      // Preserve the original word's leading capitalization.
      std::string replacement = fixed;
      if (str::is_alpha(token[0]) && token[0] >= 'A' && token[0] <= 'Z' &&
          replacement[0] >= 'a' && replacement[0] <= 'z') {
        replacement[0] = static_cast<char>(replacement[0] - 'a' + 'A');
      }
      out += replacement;
    } else {
      out += token;
    }
  }
  return out;
}

double vocabulary_hit_rate(std::string_view line, const lexicon& vocab) {
  std::size_t words = 0;
  std::size_t hits = 0;
  for (const auto& t : nlp::tokenize(line)) {
    if (t.is_number) continue;
    ++words;
    if (vocab.contains(t.text)) ++hits;
  }
  if (words == 0) return 1.0;  // an all-numeric line is fine as-is
  return static_cast<double>(hits) / static_cast<double>(words);
}

}  // namespace avtk::ocr
