#include "ocr/engine.h"

#include "obs/metrics.h"

namespace avtk::ocr {

std::string recognition_result::text() const {
  std::string out;
  for (const auto& l : lines) {
    out += l.text;
    out += '\n';
  }
  return out;
}

mock_ocr_engine::mock_ocr_engine(lexicon vocab, engine_config config)
    : vocab_(std::move(vocab)), config_(config) {}

recognized_line mock_ocr_engine::recognize_line(const std::string& line) const {
  // Hot path: the counters are resolved once, then each call is a single
  // relaxed fetch_add (safe from the pipeline's worker threads).
  static obs::counter& lines_seen = obs::metrics().get_counter("ocr.lines");
  static obs::counter& manual_review = obs::metrics().get_counter("ocr.manual_review_lines");

  recognized_line out;
  out.text = config_.apply_postprocess ? correct_line(line, vocab_) : line;
  out.confidence = vocabulary_hit_rate(out.text, vocab_);
  out.needs_manual_review = out.confidence < config_.manual_review_threshold;
  lines_seen.add();
  if (out.needs_manual_review) manual_review.add();
  return out;
}

recognition_result mock_ocr_engine::recognize(const document& doc) const {
  recognition_result out;
  double conf_sum = 0;
  for (const auto& p : doc.pages) {
    for (const auto& line : p.lines) {
      auto rec = recognize_line(line);
      conf_sum += rec.confidence;
      if (rec.needs_manual_review) ++out.manual_review_count;
      out.lines.push_back(std::move(rec));
    }
  }
  out.mean_confidence = out.lines.empty() ? 1.0 : conf_sum / static_cast<double>(out.lines.size());
  return out;
}

}  // namespace avtk::ocr
