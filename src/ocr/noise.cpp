#include "ocr/noise.h"

#include <map>

#include "util/strings.h"

namespace avtk::ocr {

noise_profile noise_profile::for_quality(scan_quality q) {
  switch (q) {
    case scan_quality::clean:
      return {0.0, 0.0, 0.0, 0.0, 0.0, 0.0};
    case scan_quality::good:
      return {0.002, 0.0003, 0.0003, 0.0005, 0.0005, 0.0};
    case scan_quality::fair:
      return {0.008, 0.001, 0.001, 0.002, 0.002, 0.0003};
    case scan_quality::poor:
      return {0.025, 0.004, 0.003, 0.006, 0.006, 0.003};
  }
  return {};
}

const std::vector<char>& confusions_for(char c) {
  static const std::map<char, std::vector<char>> table = {
      {'0', {'O', 'o'}}, {'O', {'0'}},      {'o', {'0', 'c'}}, {'1', {'l', 'I'}},
      {'l', {'1', 'I'}}, {'I', {'1', 'l'}}, {'5', {'S'}},      {'S', {'5'}},
      {'8', {'B'}},      {'B', {'8'}},      {'6', {'b'}},      {'b', {'6'}},
      {'2', {'Z'}},      {'Z', {'2'}},      {'g', {'q', '9'}}, {'9', {'g'}},
      {'c', {'e'}},      {'e', {'c'}},      {'a', {'o'}},      {'u', {'v'}},
      {'v', {'u'}},      {'n', {'h'}},      {'h', {'n'}},      {'t', {'f'}},
      {'f', {'t'}},      {'.', {','}},      {',', {'.'}},      {';', {':'}},
  };
  static const std::vector<char> empty;
  const auto it = table.find(c);
  return it == table.end() ? empty : it->second;
}

std::string corrupt_line(std::string_view line, const noise_profile& profile, rng& gen) {
  std::string out;
  out.reserve(line.size() + 4);
  for (std::size_t i = 0; i < line.size(); ++i) {
    const char c = line[i];
    if (c == ' ') {
      if (profile.space_drop > 0 && gen.bernoulli(profile.space_drop)) continue;
      out += c;
      continue;
    }
    if (profile.drop > 0 && gen.bernoulli(profile.drop)) continue;
    char emitted = c;
    if (profile.confusion > 0 && gen.bernoulli(profile.confusion)) {
      const auto& options = confusions_for(c);
      if (!options.empty()) emitted = options[static_cast<std::size_t>(gen.uniform_int(0, static_cast<std::int64_t>(options.size()) - 1))];
    }
    out += emitted;
    if (profile.duplicate > 0 && gen.bernoulli(profile.duplicate)) out += emitted;
    if (profile.space_insert > 0 && gen.bernoulli(profile.space_insert)) out += ' ';
  }
  return out;
}

void corrupt_document(document& doc, rng& gen) {
  const auto profile = noise_profile::for_quality(doc.quality);
  for (auto& p : doc.pages) {
    for (auto& line : p.lines) line = corrupt_line(line, profile, gen);
    if (profile.line_merge > 0) {
      // Structural table damage: a row fuses with its successor.
      std::vector<std::string> merged;
      merged.reserve(p.lines.size());
      for (std::size_t i = 0; i < p.lines.size(); ++i) {
        std::string line = std::move(p.lines[i]);
        while (i + 1 < p.lines.size() && gen.bernoulli(profile.line_merge)) {
          line += ' ';
          line += std::move(p.lines[i + 1]);
          ++i;
        }
        merged.push_back(std::move(line));
      }
      p.lines = std::move(merged);
    }
  }
}

double character_error_rate(std::string_view reference, std::string_view hypothesis) {
  if (reference.empty()) return hypothesis.empty() ? 0.0 : 1.0;
  return static_cast<double>(str::edit_distance(reference, hypothesis)) /
         static_cast<double>(reference.size());
}

}  // namespace avtk::ocr
