// avtk/parse/normalizer.h
//
// Stage II's final step: cross-manufacturer normalization and sanity rules
// applied to parsed records before they enter the consolidated database.
#pragma once

#include <vector>

#include "dataset/records.h"

namespace avtk::parse {

struct normalization_stats {
  std::size_t reaction_times_cleared = 0;  ///< non-physical values dropped
  std::size_t descriptions_normalized = 0; ///< whitespace collapsed
  std::size_t vehicle_ids_normalized = 0;
  std::size_t records_dropped = 0;         ///< unusable records removed
};

struct normalizer_config {
  /// Reaction times above this are kept but flagged; the paper keeps the
  /// Volkswagen ~4 h outlier in Fig. 10 and excludes it from the Fig. 11
  /// fit, so normalization must NOT delete it.
  double reaction_time_suspect_s = 300.0;
  /// Values below this are measurement noise and cleared.
  double reaction_time_floor_s = 0.0;
};

/// Normalizes disengagement records in place:
///  * trims/collapses whitespace in descriptions and vehicle ids,
///  * upper-bounds ranges is already done at parse time; here non-positive
///    reaction times are cleared,
///  * drops records with no usable content (no description at all).
normalization_stats normalize_disengagements(std::vector<dataset::disengagement_record>& records,
                                             const normalizer_config& config = {});

/// Normalizes mileage records: merges duplicate (vehicle, month) cells and
/// drops non-positive mileage.
normalization_stats normalize_mileage(std::vector<dataset::mileage_record>& records);

/// Normalizes accident records: clamps speeds to a physical range
/// [0, 120] mph and collapses whitespace.
normalization_stats normalize_accidents(std::vector<dataset::accident_record>& records);

}  // namespace avtk::parse
