#include "parse/normalizer.h"

#include <algorithm>
#include <map>

#include "util/strings.h"

namespace avtk::parse {

normalization_stats normalize_disengagements(std::vector<dataset::disengagement_record>& records,
                                             const normalizer_config& config) {
  normalization_stats stats;
  auto out = records.begin();
  for (auto& r : records) {
    const auto normalized = str::normalize_whitespace(r.description);
    if (normalized != r.description) {
      r.description = normalized;
      ++stats.descriptions_normalized;
    }
    const auto vid = str::normalize_whitespace(r.vehicle_id);
    if (vid != r.vehicle_id) {
      r.vehicle_id = vid;
      ++stats.vehicle_ids_normalized;
    }
    if (r.reaction_time_s && *r.reaction_time_s <= config.reaction_time_floor_s) {
      r.reaction_time_s.reset();
      ++stats.reaction_times_cleared;
    }
    if (r.description.empty()) {
      ++stats.records_dropped;
      continue;
    }
    if (&*out != &r) *out = std::move(r);
    ++out;
  }
  records.erase(out, records.end());
  return stats;
}

normalization_stats normalize_mileage(std::vector<dataset::mileage_record>& records) {
  normalization_stats stats;
  std::map<std::tuple<dataset::manufacturer, std::string, std::int64_t>,
           dataset::mileage_record>
      merged;
  for (auto& r : records) {
    if (!(r.miles > 0)) {
      ++stats.records_dropped;
      continue;
    }
    const auto key = std::make_tuple(r.maker, r.vehicle_id, r.month.index());
    const auto it = merged.find(key);
    if (it == merged.end()) {
      merged.emplace(key, std::move(r));
    } else {
      it->second.miles += r.miles;
    }
  }
  records.clear();
  records.reserve(merged.size());
  for (auto& [key, r] : merged) records.push_back(std::move(r));
  return stats;
}

normalization_stats normalize_accidents(std::vector<dataset::accident_record>& records) {
  normalization_stats stats;
  for (auto& r : records) {
    const auto normalized = str::normalize_whitespace(r.description);
    if (normalized != r.description) {
      r.description = normalized;
      ++stats.descriptions_normalized;
    }
    for (auto* speed : {&r.av_speed_mph, &r.other_speed_mph}) {
      if (*speed && (**speed < 0.0 || **speed > 120.0)) {
        speed->reset();
        ++stats.reaction_times_cleared;
      }
    }
  }
  return stats;
}

}  // namespace avtk::parse
