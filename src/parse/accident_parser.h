// avtk/parse/accident_parser.h
//
// Parses OL-316-style accident reports into normalized accident_records.
// Fields the DMV redacted (vehicle identification) come back empty, exactly
// as the paper encountered them ("some of the accident reports were
// partially redacted ... we cannot compute the APM per vehicle directly").
#pragma once

#include "dataset/records.h"
#include "ocr/document.h"

namespace avtk::parse {

struct accident_parse_result {
  dataset::accident_record record;
  std::size_t unparsed_fields = 0;   ///< recognized labels whose value failed to parse
  bool used_manual_fallback = false;
};

/// Parses one accident document; `manual_fallback` as in the disengagement
/// parser. Throws avtk::parse_error when the document is not an accident
/// report or the manufacturer cannot be identified.
accident_parse_result parse_accident_report(const ocr::document& doc,
                                            const ocr::document* manual_fallback = nullptr);

}  // namespace avtk::parse
