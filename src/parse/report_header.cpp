#include "parse/report_header.h"

#include "util/strings.h"

namespace avtk::parse {

using dataset::manufacturer;

std::optional<manufacturer> fuzzy_manufacturer(std::string_view text) {
  const auto exact = dataset::manufacturer_from_string(text);
  if (exact) return exact;
  const std::string lower = str::to_lower(str::trim(text));
  if (lower.size() < 2) return std::nullopt;
  std::optional<manufacturer> found;
  for (const auto m : dataset::k_all_manufacturers) {
    for (const auto name : {dataset::manufacturer_name(m), dataset::manufacturer_short_name(m)}) {
      const std::string candidate = str::to_lower(name);
      const std::size_t limit = candidate.size() >= 6 ? 2 : 1;
      if (str::edit_distance(lower, candidate) <= limit) {
        if (found && *found != m) return std::nullopt;  // ambiguous
        found = m;
      }
    }
  }
  return found;
}

report_identity identify_report(const ocr::document& doc) {
  report_identity id;
  std::size_t scanned = 0;
  for (const auto& page : doc.pages) {
    for (const auto& line : page.lines) {
      if (scanned++ > 8) break;
      const auto lower = str::to_lower(line);
      if (str::icontains(lower, "disengagement report")) {
        id.kind = report_kind::disengagement;
        // "<Maker> Autonomous Vehicle Disengagement Report"
        const auto pos = lower.find("autonomous vehicle");
        if (pos != std::string::npos && !id.maker) {
          id.maker = fuzzy_manufacturer(str::trim(std::string_view(line).substr(0, pos)));
        }
      }
      if (str::icontains(lower, "traffic collision") || str::icontains(lower, "ol 316") ||
          str::icontains(lower, "ol-316")) {
        id.kind = report_kind::accident;
      }
      if (str::starts_with(lower, "manufacturer:")) {
        id.maker = fuzzy_manufacturer(str::trim(std::string_view(line).substr(13)));
      }
      if (str::icontains(lower, "dmv release:")) {
        const auto pos = lower.find("dmv release:");
        const auto year = str::parse_int(str::trim(std::string_view(line).substr(pos + 12)));
        if (year && *year >= 2015 && *year <= 2018) id.report_year = static_cast<int>(*year);
      }
    }
  }
  return id;
}

}  // namespace avtk::parse
