// Key-value pipe-separated format: Delphi.
//   Mileage: DEL-01 | Oct 2014 | 1032.5
//   Date: 1/12/15 | Vehicle: DEL-01 | Mode: Auto | Reaction: 0.90 s |
//   Road: Highway | Weather: Sunny | Cause: ...
#include "parse/formats/common.h"

#include "util/dates.h"
#include "util/strings.h"

namespace avtk::parse::formats {

using dataset::disengagement_record;
using dataset::mileage_record;

namespace {

// Splits "Key: value" and lower-cases the key.
std::optional<std::pair<std::string, std::string>> split_kv(std::string_view part) {
  const auto colon = part.find(':');
  if (colon == std::string_view::npos) return std::nullopt;
  auto key = str::to_lower(str::trim(part.substr(0, colon)));
  auto value = std::string(str::trim(part.substr(colon + 1)));
  if (key.empty()) return std::nullopt;
  return std::make_pair(std::move(key), std::move(value));
}

bool key_is(const std::string& key, std::string_view target) {
  if (key == target) return true;
  // OCR tolerance on the short keys.
  return key.size() + 1 >= target.size() && target.size() + 1 >= key.size() &&
         str::edit_distance(key, target) <= 1;
}

}  // namespace

std::optional<parsed_line> read_delphi_line(std::string_view line) {
  const auto parts = str::split(line, '|');
  if (parts.empty()) return std::nullopt;

  // Mileage line: "Mileage: <vehicle> | <month> | <miles>".
  {
    const auto kv = split_kv(parts[0]);
    if (kv && key_is(kv->first, "mileage") && parts.size() == 3) {
      const auto month = dates::parse_year_month(parts[1]);
      const auto miles = parse_miles(parts[2]);
      if (!month || !miles || kv->second.empty()) return std::nullopt;
      mileage_record m;
      m.vehicle_id = kv->second;
      m.month = *month;
      m.miles = *miles;
      return parsed_line{std::nullopt, std::move(m)};
    }
  }

  // Event line: every part is "Key: value".
  disengagement_record d;
  bool saw_date = false;
  bool saw_cause = false;
  for (const auto& part : parts) {
    const auto kv = split_kv(part);
    if (!kv) return std::nullopt;
    const auto& [key, value] = *kv;
    if (key_is(key, "date")) {
      const auto date = dates::parse_date(value);
      if (!date) return std::nullopt;
      d.event_date = *date;
      saw_date = true;
    } else if (key_is(key, "vehicle")) {
      d.vehicle_id = value;
    } else if (key_is(key, "mode")) {
      d.mode = dataset::modality_from_string(value).value_or(dataset::modality::unknown);
    } else if (key_is(key, "reaction")) {
      d.reaction_time_s = parse_reaction_field(value);
    } else if (key_is(key, "road")) {
      d.road = dataset::road_type_from_string(value).value_or(dataset::road_type::unknown);
    } else if (key_is(key, "weather")) {
      d.conditions = dataset::weather_from_string(value).value_or(dataset::weather::unknown);
    } else if (key_is(key, "cause")) {
      d.description = value;
      saw_cause = true;
    }
    // Unknown keys are tolerated: formats drift across releases.
  }
  if (!saw_date || !saw_cause || d.description.empty()) return std::nullopt;
  return parsed_line{std::move(d), std::nullopt};
}

}  // namespace avtk::parse::formats
