// Double-hyphen-separated line formats: Nissan, Volkswagen, Waymo
// (the styles quoted in the paper's Table II).
//
//   Nissan:  1/4/16 -- 1:25 PM -- Leaf 1 (Alfa) -- <cause> -- City Street
//            -- Sunny/Dry -- Auto -- 1.10 s
//   VW:      11/12/14 -- 18:24:03 -- Takeover-Request -- watchdog error -- 1.2 s
//   Waymo:   May-16 -- Highway -- Safe Operation -- <cause> -- 0.70 s
//
// Mileage lines in all three: <vehicle> -- <month> -- <miles>.
#include "parse/formats/common.h"

#include "util/dates.h"
#include "util/strings.h"

namespace avtk::parse::formats {

using dataset::disengagement_record;
using dataset::mileage_record;
using dataset::modality;

namespace {

std::vector<std::string> split_dash(std::string_view line) {
  std::vector<std::string> out;
  for (auto& part : str::split(line, " -- ")) {
    out.push_back(std::string(str::trim(part)));
  }
  return out;
}

// <vehicle> -- <month> -- <miles>
std::optional<mileage_record> try_dash_mileage(const std::vector<std::string>& parts) {
  if (parts.size() != 3) return std::nullopt;
  const auto month = dates::parse_year_month(parts[1]);
  const auto miles = parse_miles(parts[2]);
  if (!month || !miles || parts[0].empty()) return std::nullopt;
  // Guard against misreading an event line: the vehicle field must not
  // itself be a date or month.
  if (dates::parse_date(parts[0]) || dates::parse_year_month(parts[0])) return std::nullopt;
  mileage_record m;
  m.vehicle_id = parts[0];
  m.month = *month;
  m.miles = *miles;
  return m;
}

}  // namespace

std::optional<parsed_line> read_nissan_line(std::string_view line) {
  const auto parts = split_dash(line);
  if (auto m = try_dash_mileage(parts)) return parsed_line{std::nullopt, std::move(m)};

  // date -- time -- vehicle -- cause -- road -- weather/dry -- mode [-- reaction]
  if (parts.size() < 7 || parts.size() > 8) return std::nullopt;
  const auto date = dates::parse_date(parts[0]);
  if (!date) return std::nullopt;
  disengagement_record d;
  d.event_date = *date;
  d.vehicle_id = parts[2];
  d.description = parts[3];
  d.road = dataset::road_type_from_string(parts[4]).value_or(dataset::road_type::unknown);
  // "Sunny/Dry" -> take the weather half.
  d.conditions = dataset::weather_from_string(str::split(parts[5], '/').front())
                     .value_or(dataset::weather::unknown);
  d.mode = dataset::modality_from_string(parts[6]).value_or(modality::unknown);
  if (parts.size() == 8) d.reaction_time_s = parse_reaction_field(parts[7]);
  if (d.description.empty() || d.vehicle_id.empty()) return std::nullopt;
  return parsed_line{std::move(d), std::nullopt};
}

std::optional<parsed_line> read_volkswagen_line(std::string_view line) {
  const auto parts = split_dash(line);
  if (auto m = try_dash_mileage(parts)) return parsed_line{std::nullopt, std::move(m)};

  // date -- time -- Takeover-Request -- cause [-- reaction]
  if (parts.size() < 4 || parts.size() > 5) return std::nullopt;
  const auto date = dates::parse_date(parts[0]);
  if (!date) return std::nullopt;
  if (!str::icontains(parts[2], "takeover")) {
    // Tolerate OCR damage in the marker: accept when it is at least close.
    if (str::edit_distance(str::to_lower(parts[2]), "takeover-request") > 3) return std::nullopt;
  }
  disengagement_record d;
  d.event_date = *date;
  d.mode = modality::automatic;  // every VW takeover request is system-initiated
  d.description = parts[3];
  if (parts.size() == 5) d.reaction_time_s = parse_reaction_field(parts[4]);
  if (d.description.empty()) return std::nullopt;
  return parsed_line{std::move(d), std::nullopt};
}

std::optional<parsed_line> read_waymo_line(std::string_view line) {
  const auto parts = split_dash(line);
  if (auto m = try_dash_mileage(parts)) return parsed_line{std::nullopt, std::move(m)};

  // month -- road -- marker -- cause [-- reaction]
  if (parts.size() < 4 || parts.size() > 5) return std::nullopt;
  const auto month = dates::parse_year_month(parts[0]);
  if (!month) return std::nullopt;
  disengagement_record d;
  d.event_month = *month;
  d.road = dataset::road_type_from_string(parts[1]).value_or(dataset::road_type::unknown);
  const auto& marker = parts[2];
  if (str::icontains(marker, "safe")) {
    d.mode = modality::manual;
  } else if (str::icontains(marker, "auto")) {
    d.mode = modality::automatic;
  } else if (str::icontains(marker, "plan")) {
    d.mode = modality::planned;
  } else {
    d.mode = modality::unknown;
  }
  d.description = parts[3];
  if (parts.size() == 5) d.reaction_time_s = parse_reaction_field(parts[4]);
  if (d.description.empty()) return std::nullopt;
  return parsed_line{std::move(d), std::nullopt};
}

}  // namespace avtk::parse::formats
