// avtk/parse/formats/common.h
//
// Shared helpers for the per-manufacturer format readers. Internal to
// src/parse — not part of the public API.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "dataset/records.h"

namespace avtk::parse::formats {

/// What one successfully parsed line contained.
struct parsed_line {
  std::optional<dataset::disengagement_record> event;
  std::optional<dataset::mileage_record> mileage;
};

/// A format reader: tries to parse one body line. Returns nullopt when the
/// line does not parse (caller decides whether to retry/flag), and a
/// parsed_line with neither field set when the line is a recognized
/// non-data line (section marker, column header) to be skipped.
using line_reader = std::optional<parsed_line> (*)(std::string_view line);

/// Selects the reader for a manufacturer.
line_reader reader_for(dataset::manufacturer maker);

/// True when the line is a recognizable header / section marker for any
/// format (fuzzy, OCR-tolerant).
bool is_structural_line(std::string_view line);

/// Fuzzy word containment: true when any word of `line` is within edit
/// distance 1 of `word` (both lower-cased).
bool fuzzy_contains_word(std::string_view line, std::string_view word);

/// Parses "0.85 s" / "0.85" into seconds.
std::optional<double> parse_reaction_seconds(std::string_view text);

/// Parses a reaction-time field that may be a range "0.5-1.2 s"; per the
/// paper, ranges are resolved to their upper bound.
std::optional<double> parse_reaction_field(std::string_view text);

/// Parses miles with optional thousands separators.
std::optional<double> parse_miles(std::string_view text);

// Individual format readers (exposed for targeted unit tests).
std::optional<parsed_line> read_benz_line(std::string_view line);
std::optional<parsed_line> read_bosch_line(std::string_view line);
std::optional<parsed_line> read_delphi_line(std::string_view line);
std::optional<parsed_line> read_gm_cruise_line(std::string_view line);
std::optional<parsed_line> read_nissan_line(std::string_view line);
std::optional<parsed_line> read_tesla_line(std::string_view line);
std::optional<parsed_line> read_volkswagen_line(std::string_view line);
std::optional<parsed_line> read_waymo_line(std::string_view line);
std::optional<parsed_line> read_simple_csv_line(std::string_view line);

}  // namespace avtk::parse::formats
