#include "parse/formats/common.h"

#include "nlp/tokenizer.h"
#include "util/errors.h"
#include "util/strings.h"

namespace avtk::parse::formats {

using dataset::manufacturer;

line_reader reader_for(manufacturer maker) {
  switch (maker) {
    case manufacturer::mercedes_benz: return &read_benz_line;
    case manufacturer::bosch: return &read_bosch_line;
    case manufacturer::delphi: return &read_delphi_line;
    case manufacturer::gm_cruise: return &read_gm_cruise_line;
    case manufacturer::nissan: return &read_nissan_line;
    case manufacturer::tesla: return &read_tesla_line;
    case manufacturer::volkswagen: return &read_volkswagen_line;
    case manufacturer::waymo: return &read_waymo_line;
    default: return &read_simple_csv_line;
  }
}

bool fuzzy_contains_word(std::string_view line, std::string_view word) {
  const std::string target = str::to_lower(word);
  for (const auto& t : nlp::tokenize(line)) {
    if (t.text == target) return true;
    if (t.text.size() + 1 >= target.size() && target.size() + 1 >= t.text.size() &&
        str::edit_distance(t.text, target) <= 1) {
      return true;
    }
  }
  return false;
}

bool is_structural_line(std::string_view line) {
  const auto trimmed = str::trim(line);
  if (trimmed.empty()) return true;
  // Section markers and column headers across all formats.
  for (const char* word :
       {"section", "mileage", "disengagements", "disengagement", "takeover", "events",
        "autonomous", "monthly", "summary", "miles", "reporting", "release", "planned"}) {
    if (fuzzy_contains_word(trimmed, word)) {
      // A data line also contains digits somewhere (dates, miles); a pure
      // marker/header does not — except CSV headers like "Reaction Time (s)"
      // which contain no digits either.
      bool has_digit = false;
      for (char c : trimmed) {
        if (str::is_digit(c)) {
          has_digit = true;
          break;
        }
      }
      if (!has_digit) return true;
    }
  }
  // Header block lines ("DMV Release: 2016", "Reporting Period: ...") carry
  // digits but START with these labels — data lines never do.
  {
    const auto words = str::split_whitespace(trimmed);
    if (!words.empty()) {
      const auto first_word = str::to_lower(words[0]);
      for (const char* label : {"dmv", "reporting"}) {
        if (first_word == label || (first_word.size() + 1 >= std::string_view(label).size() &&
                                    std::string_view(label).size() + 1 >= first_word.size() &&
                                    str::edit_distance(first_word, label) <= 1)) {
          return true;
        }
      }
    }
  }
  // CSV column-header rows: start with "Date"/"Vehicle"/"VIN".
  const std::string first{str::trim(str::split(trimmed, ',').front())};
  for (const char* label : {"date", "vehicle", "vin", "month"}) {
    if (str::iequals(first, label)) return true;
  }
  return false;
}

std::optional<double> parse_reaction_seconds(std::string_view text) {
  auto t = str::trim(text);
  if (t.empty()) return std::nullopt;
  if (t.size() >= 1 && (t.back() == 's' || t.back() == 'S')) {
    t = str::trim(t.substr(0, t.size() - 1));
  }
  const auto v = str::parse_double(t);
  if (!v || *v < 0) return std::nullopt;
  return v;
}

std::optional<double> parse_reaction_field(std::string_view text) {
  auto t = str::trim(text);
  if (t.empty()) return std::nullopt;
  // Range "0.5-1.2 s" -> upper bound (the paper: "We assume the reaction
  // times to be upper bounded where they are listed as ranges").
  const auto dash = t.find('-');
  if (dash != std::string_view::npos && dash > 0 && dash + 1 < t.size() &&
      str::is_digit(t[dash - 1]) && (str::is_digit(t[dash + 1]) || t[dash + 1] == '.')) {
    return parse_reaction_seconds(t.substr(dash + 1));
  }
  return parse_reaction_seconds(t);
}

std::optional<double> parse_miles(std::string_view text) {
  const auto v = str::parse_number_lenient(text);
  if (!v || *v < 0) return std::nullopt;
  return v;
}

}  // namespace avtk::parse::formats
