// CSV-based report formats: Mercedes-Benz, Bosch, GM Cruise, Tesla, and the
// minimal Ford/BMW layout. All use quoted-CSV rows; mileage rows have three
// fields (vehicle, month, miles) and event rows are distinguished by their
// field count and leading date.
#include "parse/formats/common.h"

#include "util/csv.h"
#include "util/dates.h"
#include "util/errors.h"
#include "util/strings.h"

namespace avtk::parse::formats {

using dataset::disengagement_record;
using dataset::mileage_record;
using dataset::modality;

namespace {

std::optional<csv::row> try_csv(std::string_view line) {
  try {
    return csv::parse_line(line);
  } catch (const parse_error&) {
    return std::nullopt;  // e.g. a quote character eaten by scan noise
  }
}

// A 3-field CSV mileage row: vehicle, month, miles.
std::optional<mileage_record> try_mileage(const csv::row& fields) {
  if (fields.size() != 3) return std::nullopt;
  const auto month = dates::parse_year_month(fields[1]);
  const auto miles = parse_miles(fields[2]);
  if (!month || !miles || str::trim(fields[0]).empty()) return std::nullopt;
  mileage_record m;
  m.vehicle_id = std::string(str::trim(fields[0]));
  m.month = *month;
  m.miles = *miles;
  return m;
}

}  // namespace

std::optional<parsed_line> read_benz_line(std::string_view line) {
  const auto fields = try_csv(line);
  if (!fields) return std::nullopt;
  if (auto m = try_mileage(*fields)) return parsed_line{std::nullopt, std::move(m)};

  // Date,VIN,Initiated By,Reaction Time (s),Road Type,Weather,Description
  if (fields->size() != 7) return std::nullopt;
  const auto date = dates::parse_date((*fields)[0]);
  if (!date) return std::nullopt;
  disengagement_record d;
  d.event_date = *date;
  d.vehicle_id = std::string(str::trim((*fields)[1]));
  const auto initiated = str::trim((*fields)[2]);
  if (str::iequals(initiated, "Driver")) {
    d.mode = modality::manual;
  } else if (str::iequals(initiated, "ADS")) {
    d.mode = modality::automatic;
  } else if (const auto m = dataset::modality_from_string(initiated)) {
    d.mode = *m;
  }
  d.reaction_time_s = parse_reaction_field((*fields)[3]);
  d.road = dataset::road_type_from_string((*fields)[4]).value_or(dataset::road_type::unknown);
  d.conditions = dataset::weather_from_string((*fields)[5]).value_or(dataset::weather::unknown);
  d.description = (*fields)[6];
  if (d.description.empty()) return std::nullopt;
  return parsed_line{std::move(d), std::nullopt};
}

std::optional<parsed_line> read_bosch_line(std::string_view line) {
  const auto fields = try_csv(line);
  if (!fields) return std::nullopt;
  if (auto m = try_mileage(*fields)) return parsed_line{std::nullopt, std::move(m)};

  // Date,Vehicle,Test Type,Cause
  if (fields->size() != 4) return std::nullopt;
  const auto date = dates::parse_date((*fields)[0]);
  if (!date) return std::nullopt;
  disengagement_record d;
  d.event_date = *date;
  d.vehicle_id = std::string(str::trim((*fields)[1]));
  d.mode = modality::planned;
  d.description = (*fields)[3];
  if (d.description.empty()) return std::nullopt;
  return parsed_line{std::move(d), std::nullopt};
}

std::optional<parsed_line> read_gm_cruise_line(std::string_view line) {
  // Same structure as Bosch: planned tests with ISO dates.
  return read_bosch_line(line);
}

std::optional<parsed_line> read_tesla_line(std::string_view line) {
  const auto fields = try_csv(line);
  if (!fields) return std::nullopt;
  if (auto m = try_mileage(*fields)) return parsed_line{std::nullopt, std::move(m)};

  // Date,Vehicle,Mode,Reaction Time (s),Description
  if (fields->size() != 5) return std::nullopt;
  const auto date = dates::parse_date((*fields)[0]);
  if (!date) return std::nullopt;
  disengagement_record d;
  d.event_date = *date;
  d.vehicle_id = std::string(str::trim((*fields)[1]));
  d.mode = dataset::modality_from_string((*fields)[2]).value_or(modality::unknown);
  d.reaction_time_s = parse_reaction_field((*fields)[3]);
  d.description = (*fields)[4];
  if (d.description.empty()) return std::nullopt;
  return parsed_line{std::move(d), std::nullopt};
}

std::optional<parsed_line> read_simple_csv_line(std::string_view line) {
  const auto fields = try_csv(line);
  if (!fields) return std::nullopt;
  if (auto m = try_mileage(*fields)) return parsed_line{std::nullopt, std::move(m)};

  // Date,Vehicle,Mode,Description
  if (fields->size() != 4) return std::nullopt;
  const auto date = dates::parse_date((*fields)[0]);
  if (!date) return std::nullopt;
  disengagement_record d;
  d.event_date = *date;
  d.vehicle_id = std::string(str::trim((*fields)[1]));
  d.mode = dataset::modality_from_string((*fields)[2]).value_or(modality::unknown);
  d.description = (*fields)[3];
  if (d.description.empty()) return std::nullopt;
  return parsed_line{std::move(d), std::nullopt};
}

}  // namespace avtk::parse::formats
