#include "parse/filter.h"

namespace avtk::parse {

bool passes_filter(const dataset::failure_database& db, dataset::manufacturer maker,
                   const filter_config& config) {
  return db.total_disengagements(maker) >= config.min_disengagements;
}

std::vector<dataset::manufacturer> analyzed_manufacturers(const dataset::failure_database& db,
                                                          const filter_config& config) {
  std::vector<dataset::manufacturer> out;
  for (const auto m : db.manufacturers_present()) {
    if (passes_filter(db, m, config)) out.push_back(m);
  }
  return out;
}

}  // namespace avtk::parse
