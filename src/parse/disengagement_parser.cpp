#include "parse/disengagement_parser.h"

#include <cmath>
#include <set>

#include "parse/formats/common.h"
#include "parse/report_header.h"
#include "util/errors.h"
#include "util/strings.h"

namespace avtk::parse {

namespace {

// Flattens a document into one vector of lines (page order preserved).
std::vector<const std::string*> flatten(const ocr::document& doc) {
  std::vector<const std::string*> lines;
  for (const auto& p : doc.pages) {
    for (const auto& l : p.lines) lines.push_back(&l);
  }
  return lines;
}

}  // namespace

disengagement_parse_result parse_disengagement_report(const ocr::document& doc,
                                                      const ocr::document* manual_fallback) {
  auto id = identify_report(doc);
  if ((id.kind != report_kind::disengagement || !id.maker || !id.report_year) &&
      manual_fallback != nullptr) {
    // Header too damaged to identify: consult the manual transcription.
    id = identify_report(*manual_fallback);
  }
  if (id.kind != report_kind::disengagement) {
    throw header_error("document is not a disengagement report: " + doc.title);
  }
  if (!id.maker) throw header_error("cannot identify manufacturer of: " + doc.title);
  if (!id.report_year) throw header_error("cannot identify DMV release of: " + doc.title);

  disengagement_parse_result result;
  result.maker = *id.maker;
  result.report_year = *id.report_year;

  const auto reader = formats::reader_for(result.maker);
  const auto lines = flatten(doc);
  std::vector<const std::string*> fallback_lines;
  if (manual_fallback != nullptr) fallback_lines = flatten(*manual_fallback);
  const bool fallback_usable = fallback_lines.size() == lines.size();

  if (manual_fallback != nullptr && !fallback_usable) {
    // Structural scan damage (merged table rows): the line-for-line
    // fallback cannot align, so the whole document goes to manual
    // transcription — the paper's handling for tables Tesseract could not
    // segment.
    auto manual = parse_disengagement_report(*manual_fallback, nullptr);
    manual.manual_transcriptions = manual.events.size() + manual.mileage.size();
    return manual;
  }

  const auto finish = [&](dataset::disengagement_record d) {
    d.maker = result.maker;
    d.report_year = result.report_year;
    result.events.push_back(std::move(d));
  };
  const auto finish_mileage = [&](dataset::mileage_record m) {
    m.maker = result.maker;
    m.report_year = result.report_year;
    result.mileage.push_back(std::move(m));
  };

  for (std::size_t i = 0; i < lines.size(); ++i) {
    const auto& line = *lines[i];
    if (str::trim(line).empty() || formats::is_structural_line(line)) {
      ++result.skipped_lines;
      continue;
    }
    auto parsed = reader(line);
    if (!parsed && fallback_usable) {
      // Manual transcription: re-read the pristine line, as the paper did
      // for documents Tesseract mangled.
      parsed = reader(*fallback_lines[i]);
      if (parsed) ++result.manual_transcriptions;
    }
    if (!parsed) {
      // The pristine line might be structural (the delivered copy was too
      // damaged for is_structural_line to tell).
      if (fallback_usable && formats::is_structural_line(*fallback_lines[i])) {
        ++result.skipped_lines;
      } else {
        ++result.failed_lines;
      }
      continue;
    }
    if (parsed->event) finish(std::move(*parsed->event));
    if (parsed->mileage) finish_mileage(std::move(*parsed->mileage));
  }

  if (fallback_usable) {
    // Mileage audit: scan noise can silently corrupt digits (a duplicated
    // "1" turns 1032 miles into 11032). Re-derive the mileage table from
    // the manual transcription and compare totals; on mismatch, trust the
    // transcription (the paper's authors manually verified totals too).
    std::vector<dataset::mileage_record> pristine_mileage;
    for (const auto* line : fallback_lines) {
      if (str::trim(*line).empty() || formats::is_structural_line(*line)) continue;
      const auto parsed = reader(*line);
      if (parsed && parsed->mileage) {
        auto m = *parsed->mileage;
        m.maker = result.maker;
        m.report_year = result.report_year;
        pristine_mileage.push_back(std::move(m));
      }
    }
    double noisy_total = 0;
    for (const auto& m : result.mileage) noisy_total += m.miles;
    double pristine_total = 0;
    for (const auto& m : pristine_mileage) pristine_total += m.miles;
    const bool row_mismatch = pristine_mileage.size() != result.mileage.size();
    const bool total_mismatch =
        pristine_total > 0 &&
        std::fabs(noisy_total - pristine_total) > 0.001 * pristine_total;
    // The fleet roster must agree too: a corrupted vehicle id would
    // otherwise inflate Table I's car count.
    bool roster_mismatch = false;
    if (!row_mismatch) {
      std::set<std::string> noisy_roster;
      std::set<std::string> pristine_roster;
      for (const auto& m : result.mileage) noisy_roster.insert(m.vehicle_id);
      for (const auto& m : pristine_mileage) pristine_roster.insert(m.vehicle_id);
      roster_mismatch = noisy_roster != pristine_roster;
    }
    if (row_mismatch || total_mismatch || roster_mismatch) {
      result.manual_transcriptions += pristine_mileage.size();
      result.mileage = std::move(pristine_mileage);
    }

    // Vehicle-id repair: snap event vehicle ids damaged by scan noise onto
    // the mileage table's fleet roster (unique match within distance 2).
    std::set<std::string> roster;
    for (const auto& m : result.mileage) roster.insert(m.vehicle_id);
    for (auto& e : result.events) {
      if (e.vehicle_id.empty() || roster.contains(e.vehicle_id)) continue;
      std::string best;
      bool ambiguous = false;
      for (const auto& candidate : roster) {
        if (str::edit_distance(e.vehicle_id, candidate) <= 2) {
          if (!best.empty()) ambiguous = true;
          best = candidate;
        }
      }
      if (!best.empty() && !ambiguous) e.vehicle_id = best;
    }
  }
  return result;
}

}  // namespace avtk::parse
