// avtk/parse/filter.h
//
// Stage II filtering rules: which manufacturers enter the statistical
// analysis. The paper excludes Uber, BMW, Ford and Honda ("too few
// disengagements for us to draw statistically significant conclusions").
#pragma once

#include <vector>

#include "dataset/database.h"

namespace avtk::parse {

struct filter_config {
  /// Manufacturers with fewer total disengagements than this are excluded
  /// from the analysis set (their accidents still count toward totals).
  long long min_disengagements = 20;
};

/// Manufacturers in `db` that pass the filter.
std::vector<dataset::manufacturer> analyzed_manufacturers(const dataset::failure_database& db,
                                                          const filter_config& config = {});

/// True when the manufacturer passes.
bool passes_filter(const dataset::failure_database& db, dataset::manufacturer maker,
                   const filter_config& config = {});

}  // namespace avtk::parse
