#include "parse/accident_parser.h"

#include "parse/report_header.h"
#include "util/errors.h"
#include "util/strings.h"

namespace avtk::parse {

namespace {

// Known OL-316 labels; incoming keys are snapped to these with edit-
// distance tolerance so scan noise in a label does not silently drop the
// field's value.
std::string canonical_key(std::string_view raw) {
  static const char* known[] = {
      "date of accident", "vehicle",          "location",
      "av speed (mph)",   "other vehicle speed (mph)", "autonomous mode",
      "collision type",   "near intersection", "injuries",
      "description",      "dmv release",      "manufacturer",
  };
  const std::string key = str::to_lower(str::trim(raw));
  for (const char* k : known) {
    if (key == k) return key;
  }
  std::string best;
  for (const char* k : known) {
    const std::string_view kv = k;
    if (key.size() + 2 < kv.size() || kv.size() + 2 < key.size()) continue;
    if (str::edit_distance(key, kv) <= 2) {
      if (!best.empty()) return key;  // ambiguous: keep the raw key
      best = kv;
    }
  }
  return best.empty() ? key : best;
}

// Canonical-label -> handler dispatch. Returns true when the value was
// consumed successfully.
bool apply_field(dataset::accident_record& rec, std::string_view key, std::string_view value) {
  const auto v = str::trim(value);
  if (key == "date of accident") {
    const auto d = dates::parse_date(v);
    if (!d) return false;
    rec.event_date = *d;
    return true;
  }
  if (key == "vehicle") {
    if (str::icontains(v, "redacted")) {
      rec.vehicle_id.clear();
    } else {
      rec.vehicle_id = std::string(v);
    }
    return true;
  }
  if (key == "location") {
    rec.location = std::string(v);
    rec.near_intersection = str::icontains(v, "intersection");
    return true;
  }
  if (key == "av speed (mph)") {
    if (str::iequals(v, "unknown")) return true;
    const auto s = str::parse_double(v);
    if (!s || *s < 0) return false;
    rec.av_speed_mph = *s;
    return true;
  }
  if (key == "other vehicle speed (mph)") {
    if (str::iequals(v, "unknown")) return true;
    const auto s = str::parse_double(v);
    if (!s || *s < 0) return false;
    rec.other_speed_mph = *s;
    return true;
  }
  if (key == "autonomous mode") {
    rec.av_in_autonomous_mode = str::iequals(v, "Yes");
    return true;
  }
  if (key == "collision type") {
    rec.rear_end = str::icontains(v, "rear");
    return true;
  }
  if (key == "near intersection") {
    if (str::iequals(v, "Yes")) rec.near_intersection = true;
    return true;
  }
  if (key == "injuries") {
    rec.injuries = str::iequals(v, "Yes");
    return true;
  }
  if (key == "description") {
    rec.description = std::string(v);
    return true;
  }
  if (key == "dmv release") {
    const auto y = str::parse_int(v);
    if (!y || *y < 2015 || *y > 2018) return false;
    rec.report_year = static_cast<int>(*y);
    return true;
  }
  return true;  // unknown labels tolerated
}

// Splits "Label: value"; labels never contain ':'.
std::optional<std::pair<std::string, std::string>> split_label(std::string_view line) {
  const auto colon = line.find(':');
  if (colon == std::string_view::npos) return std::nullopt;
  return std::make_pair(canonical_key(line.substr(0, colon)),
                        std::string(str::trim(line.substr(colon + 1))));
}

}  // namespace

accident_parse_result parse_accident_report(const ocr::document& doc,
                                            const ocr::document* manual_fallback) {
  auto id = identify_report(doc);
  if ((id.kind != report_kind::accident || !id.maker) && manual_fallback != nullptr) {
    id = identify_report(*manual_fallback);
  }
  if (id.kind != report_kind::accident) {
    throw header_error("document is not an accident report: " + doc.title);
  }
  if (!id.maker) {
    throw header_error("cannot identify manufacturer of accident report: " + doc.title);
  }

  accident_parse_result out;
  out.record.maker = *id.maker;
  if (id.report_year) out.record.report_year = *id.report_year;

  std::vector<const std::string*> lines;
  for (const auto& p : doc.pages) {
    for (const auto& l : p.lines) lines.push_back(&l);
  }
  std::vector<const std::string*> fallback_lines;
  if (manual_fallback != nullptr) {
    for (const auto& p : manual_fallback->pages) {
      for (const auto& l : p.lines) fallback_lines.push_back(&l);
    }
  }
  const bool fallback_usable = fallback_lines.size() == lines.size();

  if (manual_fallback != nullptr && !fallback_usable) {
    // Merged lines: transcribe the whole report manually.
    auto manual = parse_accident_report(*manual_fallback, nullptr);
    manual.used_manual_fallback = true;
    return manual;
  }

  for (std::size_t i = 0; i < lines.size(); ++i) {
    auto kv = split_label(*lines[i]);
    bool ok = kv && apply_field(out.record, kv->first, kv->second);
    if (!ok && fallback_usable) {
      kv = split_label(*fallback_lines[i]);
      if (kv && apply_field(out.record, kv->first, kv->second)) {
        ok = true;
        out.used_manual_fallback = true;
      }
    }
    if (!ok && kv) ++out.unparsed_fields;
  }
  return out;
}

}  // namespace avtk::parse
