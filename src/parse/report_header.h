// avtk/parse/report_header.h
//
// Identifies a report document: which manufacturer produced it, which DMV
// release it belongs to, and whether it is a disengagement report or an
// OL-316 accident report.
#pragma once

#include <optional>
#include <string_view>

#include "dataset/manufacturers.h"
#include "ocr/document.h"

namespace avtk::parse {

enum class report_kind { disengagement, accident, unknown };

struct report_identity {
  report_kind kind = report_kind::unknown;
  std::optional<dataset::manufacturer> maker;
  std::optional<int> report_year;
};

/// Inspects the first lines of a document. Robust to residual OCR noise:
/// manufacturer names are matched with edit-distance tolerance.
report_identity identify_report(const ocr::document& doc);

/// Fuzzy manufacturer lookup: exact spellings first, then edit distance <= 1
/// against the known names. Returns nullopt when nothing is close.
std::optional<dataset::manufacturer> fuzzy_manufacturer(std::string_view text);

}  // namespace avtk::parse
