// avtk/parse/disengagement_parser.h
//
// Stage II: parses one manufacturer's disengagement report (in whichever of
// the heterogeneous formats that manufacturer uses) into normalized
// records. Parsing is line-oriented and fault-tolerant: a line that cannot
// be parsed is retried against the "manual transcription" fallback (the
// paper manually converted documents Tesseract could not handle); lines
// that still fail are counted, never silently dropped.
#pragma once

#include <cstddef>
#include <vector>

#include "dataset/records.h"
#include "ocr/document.h"

namespace avtk::parse {

struct disengagement_parse_result {
  dataset::manufacturer maker = dataset::manufacturer::waymo;
  int report_year = 0;
  std::vector<dataset::disengagement_record> events;
  std::vector<dataset::mileage_record> mileage;
  std::size_t skipped_lines = 0;          ///< headers / section markers
  std::size_t failed_lines = 0;           ///< unparseable even after fallback
  std::size_t manual_transcriptions = 0;  ///< lines recovered via fallback
};

/// Parses `doc`. When `manual_fallback` is non-null it must be the pristine
/// rendering of the same document (same page/line structure); lines that
/// fail on the delivered text are retried against it.
/// Throws avtk::parse_error when the document cannot be identified as a
/// disengagement report of a known manufacturer.
disengagement_parse_result parse_disengagement_report(
    const ocr::document& doc, const ocr::document* manual_fallback = nullptr);

}  // namespace avtk::parse
